package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/testutil"
	"lipstick/internal/workflow"
	"lipstick/internal/workflowgen"
)

// captureDealership runs the dealership generator with streaming capture
// on, returning the batch-built graph and the captured event stream.
func captureDealership(t testing.TB, numCars, numExec int) (*provgraph.Graph, []provgraph.Event) {
	t.Helper()
	log := provgraph.NewEventLog()
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: numCars, NumExec: numExec, Seed: 7,
		Gran: workflow.Fine, StopOnPurchase: false,
		EventSink: log.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Runner.Graph(), log.Drain()
}

func captureArctic(t testing.TB) (*provgraph.Graph, []provgraph.Event) {
	t.Helper()
	log := provgraph.NewEventLog()
	run, err := workflowgen.NewArcticRun(workflowgen.ArcticParams{
		Stations: 4, Topology: workflowgen.Dense, FanOut: 2,
		Selectivity: workflowgen.SelMonth, NumExec: 3, Seed: 3,
		Gran: workflow.Fine, HistoryYears: 2,
		EventSink: log.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	return run.Runner.Graph(), log.Drain()
}

// assertLiveMatchesBatch ingests events into an in-memory live graph in
// batches and asserts the result is indistinguishable from the in-process
// batch build: structure, invocations, and index-backed selection.
func assertLiveMatchesBatch(t *testing.T, batch *provgraph.Graph, events []provgraph.Event) {
	t.Helper()
	lg := NewLiveGraph("t")
	const chunk = 97
	seq := uint64(1)
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		st, err := lg.Append(seq, events[i:end])
		if err != nil {
			t.Fatalf("append at seq %d: %v", seq, err)
		}
		if st.Applied != end-i {
			t.Fatalf("applied %d, want %d", st.Applied, end-i)
		}
		seq += uint64(st.Applied)
	}
	if lg.Seq() != uint64(len(events)) {
		t.Fatalf("seq = %d, want %d", lg.Seq(), len(events))
	}
	if err := lg.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("ingested graph differs from batch build")
		}
		if batch.NumInvocations() != qp.Graph().NumInvocations() {
			t.Fatalf("invocations: %d vs %d", batch.NumInvocations(), qp.Graph().NumInvocations())
		}
		for i := 0; i < batch.NumInvocations(); i++ {
			a, b := batch.Invocation(provgraph.InvID(i)), qp.Graph().Invocation(provgraph.InvID(i))
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("invocation %d differs:\nbatch %+v\nlive  %+v", i, a, b)
			}
		}
		// The incrementally grown postings must equal a from-scratch index.
		assertPostingsEqual(t, store.BuildIndex(batch), qp.Index().data)
		// And index-backed selection answers like a batch processor.
		ref := NewQueryProcessor(&store.Snapshot{Graph: batch})
		for _, f := range []NodeFilter{
			{Types: []provgraph.Type{provgraph.TypeInvocation}},
			{Module: "M_dealer1"},
			{Ops: []provgraph.Op{provgraph.OpAgg}, Label: "MIN"},
			{Types: []provgraph.Type{provgraph.TypeBaseTuple}, Label: "d1.car0"},
		} {
			if want, got := ref.FindNodes(f), qp.FindNodes(f); !reflect.DeepEqual(want, got) {
				t.Fatalf("FindNodes(%+v): batch %v, live %v", f, want, got)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// assertPostingsEqual compares a live index's lookups against a
// from-scratch batch index over every key either side can have. The live
// index is layered (LSM levels over an optional base), so equality is
// checked through the Postings interface, not structurally.
func assertPostingsEqual(t *testing.T, want *store.Index, got store.Postings) {
	t.Helper()
	if got.Coverage() != want.Nodes {
		t.Fatalf("postings coverage %d, want %d", got.Coverage(), want.Nodes)
	}
	for k := 0; k < 256; k++ {
		if w, g := want.ByType[provgraph.Type(k)], got.TypeIDs(provgraph.Type(k)); !sameIDs(w, g) {
			t.Fatalf("TypeIDs(%d): live %v, batch %v", k, g, w)
		}
		if w, g := want.ByOp[provgraph.Op(k)], got.OpIDs(provgraph.Op(k)); !sameIDs(w, g) {
			t.Fatalf("OpIDs(%d): live %v, batch %v", k, g, w)
		}
	}
	for label, w := range want.ByLabel {
		if g := got.LabelIDs(label); !sameIDs(w, g) {
			t.Fatalf("LabelIDs(%q): live %v, batch %v", label, g, w)
		}
	}
	for mod, w := range want.ByModule {
		if g := got.ModuleIDs(mod); !sameIDs(w, g) {
			t.Fatalf("ModuleIDs(%q): live %v, batch %v", mod, g, w)
		}
	}
	for mod, w := range want.ModuleInvs {
		if g := got.ModuleInvocations(mod); len(w) != len(g) || !reflect.DeepEqual(append([]provgraph.InvID{}, w...), append([]provgraph.InvID{}, g...)) {
			t.Fatalf("ModuleInvocations(%q): live %v, batch %v", mod, g, w)
		}
	}
}

func sameIDs(a, b []provgraph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLiveGraphMatchesBatchDealership(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	batch, events := captureDealership(t, 120, 3)
	if len(events) == 0 {
		t.Fatal("capture produced no events")
	}
	assertLiveMatchesBatch(t, batch, events)
}

func TestLiveGraphMatchesBatchArctic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	batch, events := captureArctic(t)
	assertLiveMatchesBatch(t, batch, events)
}

func TestLiveGraphMatchesBatchParallelCapture(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// A parallel run's drained event stream must replay to the same graph
	// a sequential run builds.
	log := provgraph.NewEventLog()
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: 120, NumExec: 3, Seed: 7,
		Gran: workflow.Fine, StopOnPurchase: false, Parallelism: 4,
		EventSink: log.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	sequential, _ := captureDealership(t, 120, 3)
	replayed, err := provgraph.Replay(log.Drain())
	if err != nil {
		t.Fatal(err)
	}
	if !sequential.StructurallyEqual(replayed) {
		t.Fatal("parallel capture replay differs from sequential build")
	}
	_ = run
}

func TestLiveGraphDuplicateAndGapBatches(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, events := captureDealership(t, 60, 2)
	lg := NewLiveGraph("t")
	if _, err := lg.Append(1, events[:50]); err != nil {
		t.Fatal(err)
	}
	// A retried (overlapping) batch is absorbed without duplication.
	st, err := lg.Append(21, events[20:80])
	if err != nil {
		t.Fatalf("overlapping retry: %v", err)
	}
	if st.Duplicates != 30 || st.Applied != 30 || st.Seq != 80 {
		t.Fatalf("retry status = %+v, want 30 dup / 30 applied / seq 80", st)
	}
	// A fully duplicate batch is a no-op.
	st, err = lg.Append(1, events[:80])
	if err != nil || st.Applied != 0 || st.Seq != 80 {
		t.Fatalf("full duplicate: status %+v err %v", st, err)
	}
	// A gap is rejected and does not advance the stream.
	if _, err := lg.Append(100, events[99:]); err == nil {
		t.Fatal("gap accepted")
	} else if _, ok := err.(*SeqGapError); !ok {
		t.Fatalf("gap error type %T, want *SeqGapError", err)
	}
	if lg.Seq() != 80 {
		t.Fatalf("seq moved to %d on rejected batch", lg.Seq())
	}
}

// commitModes runs a durable-graph test under both WAL disciplines:
// fsync-per-append (serial) and group commit. Recovery semantics must be
// identical — the on-disk format is shared.
func commitModes(t *testing.T, fn func(t *testing.T, opts []LiveOption)) {
	t.Helper()
	for name, logOpts := range map[string][]store.LogOption{
		"serial": nil,
		"group":  {store.WithGroupCommit(0, 0)},
	} {
		t.Run(name, func(t *testing.T) {
			fn(t, []LiveOption{WithLogOptions(append(logOpts, store.WithFsync(false))...)})
		})
	}
}

func TestLiveGraphCrashRecovery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	batch, events := captureDealership(t, 120, 3)
	commitModes(t, func(t *testing.T, opts []LiveOption) {
		dir := t.TempDir()
		mid := len(events) / 2

		lg, err := OpenLiveGraph("d", dir, append(opts, WithLogOptions(store.WithSegmentLimit(64<<10)))...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lg.Append(1, events[:mid]); err != nil {
			t.Fatal(err)
		}
		if err := lg.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := lg.Append(uint64(mid)+1, events[mid:]); err != nil {
			t.Fatal(err)
		}
		// Simulated kill: every append above already waited for its
		// commit, and the log has no clean-shutdown marker, so the disk
		// state Close leaves behind is byte-identical to a kill here.
		// (Recovery from a genuinely unclosed log is covered by the
		// store-level WAL tests, which run without a committer.)
		if err := lg.Close(); err != nil {
			t.Fatal(err)
		}

		restored, err := OpenLiveGraph("d", dir)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if restored.Seq() != uint64(len(events)) {
			t.Fatalf("recovered seq %d, want %d (lost or duplicated events)", restored.Seq(), len(events))
		}
		if restored.CheckpointSeq() != uint64(mid) {
			t.Fatalf("checkpoint seq %d, want %d", restored.CheckpointSeq(), mid)
		}
		if err := restored.Read(func(qp *QueryProcessor) error {
			if !batch.StructurallyEqual(qp.Graph()) {
				t.Fatal("recovered graph differs from batch build")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// A client retry of the final batch after restart must dedupe.
		st, err := restored.Append(uint64(mid)+1, events[mid:])
		if err != nil || st.Applied != 0 {
			t.Fatalf("post-recovery retry applied %d events (err %v)", st.Applied, err)
		}
		if err := restored.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLiveGraphTornTailRecovery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	batch, events := captureDealership(t, 60, 2)
	commitModes(t, func(t *testing.T, opts []LiveOption) { testTornTailRecovery(t, opts, batch, events) })
}

func testTornTailRecovery(t *testing.T, opts []LiveOption, batch *provgraph.Graph, events []provgraph.Event) {
	dir := t.TempDir()
	lg, err := OpenLiveGraph("d", dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append(1, events); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record, as a kill mid-write would.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.lpwal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	restored, err := OpenLiveGraph("d", dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	lost := uint64(len(events)) - restored.Seq()
	if lost == 0 {
		t.Fatal("expected the torn record to be dropped")
	}
	// The sender's retry path: resend from its own position; overlap
	// dedupes, the torn suffix is re-applied.
	if _, err := restored.Append(uint64(len(events)-int(lost)-3), events[len(events)-int(lost)-4:]); err != nil {
		t.Fatalf("repair append: %v", err)
	}
	if restored.Seq() != uint64(len(events)) {
		t.Fatalf("repaired seq %d, want %d", restored.Seq(), len(events))
	}
	if err := restored.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("repaired graph differs from batch build")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveGraphConcurrentIngestAndReads(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Readers query through the full surface while the writer streams
	// batches — run under -race in CI.
	_, events := captureDealership(t, 120, 3)
	lg := NewLiveGraph("race")
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = lg.Read(func(qp *QueryProcessor) error {
					nodes := qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeInvocation}})
					if len(nodes) > 0 {
						qp.Lineage(nodes[len(nodes)-1])
						qp.Subgraph(nodes[0])
						qp.WhatIfDelete(nodes[0])
					}
					qp.Graph().ComputeStats()
					return nil
				})
				_ = lg.Info()
			}
		}()
	}
	seq := uint64(1)
	const chunk = 50
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		if _, err := lg.Append(seq, events[i:end]); err != nil {
			t.Fatal(err)
		}
		seq = lg.Seq() + 1
	}
	close(done)
	wg.Wait()
	if lg.Seq() != uint64(len(events)) {
		t.Fatalf("seq = %d, want %d", lg.Seq(), len(events))
	}
}

func TestRegistryLiveGraphs(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "mini.lpsk")
	r := NewRegistry(nil)
	if err := r.Register("mini", path); err != nil {
		t.Fatal(err)
	}
	lg, err := r.OpenLive("stream")
	if err != nil {
		t.Fatal(err)
	}
	if again, err := r.OpenLive("stream"); err != nil || again != lg {
		t.Fatalf("OpenLive is not idempotent (err %v)", err)
	}
	if _, err := r.OpenLive("mini"); err == nil {
		t.Fatal("OpenLive accepted a static snapshot's name")
	}
	if err := r.Register("stream", path); err == nil {
		t.Fatal("Register accepted a live graph's name")
	}
	if _, err := r.LiveGraph("ghost"); err == nil {
		t.Fatal("LiveGraph resolved an unknown name")
	}
	if _, err := r.CreateSession("stream"); err == nil {
		t.Fatal("CreateSession accepted a live graph")
	}
	snaps := r.Snapshots()
	if len(snaps) != 2 || r.NumSnapshots() != 2 {
		t.Fatalf("snapshots: %+v", snaps)
	}
	if snaps[0].Name != "mini" || snaps[0].Kind != "static" ||
		snaps[1].Name != "stream" || snaps[1].Kind != "live" {
		t.Fatalf("listing: %+v", snaps)
	}
}

func TestRegistryRestoreLiveDir(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	liveDir := filepath.Join(dir, "live")
	_, events := captureDealership(t, 60, 2)

	r := NewRegistry(nil, WithLiveDir(liveDir), WithLiveOptions(WithLogOptions(store.WithFsync(false))))
	lg, err := r.OpenLive("run1")
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Durable() {
		t.Fatal("live graph under a live dir must be durable")
	}
	if _, err := lg.Append(1, events); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := NewRegistry(nil, WithLiveDir(liveDir))
	names, err := r2.RestoreLiveDir()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "run1" {
		t.Fatalf("restored %v, want [run1]", names)
	}
	restored, err := r2.LiveGraph("run1")
	if err != nil {
		t.Fatal(err)
	}
	if restored.Seq() != uint64(len(events)) {
		t.Fatalf("restored seq %d, want %d", restored.Seq(), len(events))
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionFork(t *testing.T) {
	dir := t.TempDir()
	path := saveDealershipSnapshot(t, dir)
	r := NewRegistry(nil)
	if err := r.Register("d", path); err != nil {
		t.Fatal(err)
	}
	parent, err := r.CreateSession("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.ZoomOut("M_agg"); err != nil {
		t.Fatal(err)
	}
	inputs := parent.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeWorkflowInput}})
	if len(inputs) == 0 {
		t.Fatal("no workflow inputs to delete")
	}
	parent.ApplyDelete(inputs[0])

	child, err := r.ForkSession(parent.ID())
	if err != nil {
		t.Fatal(err)
	}
	if child.ID() == parent.ID() {
		t.Fatal("fork reused the parent id")
	}
	if child.SnapshotName() != "d" || child.Changes() != parent.Changes() {
		t.Fatalf("fork state: snapshot %q changes %d vs parent %d",
			child.SnapshotName(), child.Changes(), parent.Changes())
	}
	parentView, childView := sessionView(parent), sessionView(child)
	if !provgraph.ViewsStructurallyEqual(parentView, childView) {
		t.Fatal("forked view differs from parent")
	}
	// The fork inherits the zoom stack: zooming back in must work.
	if _, err := child.ZoomIn(); err != nil {
		t.Fatalf("fork zoom-in: %v", err)
	}
	// And the two sessions diverge independently.
	parent.ApplyDelete(inputs[len(inputs)-1])
	if provgraph.ViewsStructurallyEqual(sessionView(parent), sessionView(child)) {
		t.Fatal("parent mutation leaked into the fork (or vice versa)")
	}
	if _, err := r.ForkSession("sess-missing"); err == nil {
		t.Fatal("forking an unknown session succeeded")
	}
}

// saveDealershipSnapshot tracks a small dealership run and saves it.
func saveDealershipSnapshot(t testing.TB, dir string) string {
	t.Helper()
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: 60, NumExec: 2, Seed: 7, Gran: workflow.Fine,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dealership.lpsk")
	if err := store.Save(path, &store.Snapshot{Graph: run.Runner.Graph()}); err != nil {
		t.Fatal(err)
	}
	return path
}

func BenchmarkLiveIngest(b *testing.B) {
	_, events := captureDealership(b, benchCars, benchExecs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg := NewLiveGraph(fmt.Sprintf("b%d", i))
		seq := uint64(1)
		const chunk = 512
		for j := 0; j < len(events); j += chunk {
			end := j + chunk
			if end > len(events) {
				end = len(events)
			}
			if _, err := lg.Append(seq, events[j:end]); err != nil {
				b.Fatal(err)
			}
			seq += uint64(end - j)
		}
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkLiveIngestDurable measures durable ingest throughput under the
// three WAL disciplines — fsync-per-append (the pre-group-commit
// production discipline), fsync disabled (the log path without the disk
// flush), and group commit with fsync ON — each with a single pipelined
// writer and with 4 concurrent writers streaming one ordered stream
// (claim + submit serialized, durability waits overlapping, as a
// multi-connection sender would). The headline comparison is
// group/w4 vs fsync/w4: how much durable throughput group commit
// recovers once concurrent batches share each disk flush.
func BenchmarkLiveIngestDurable(b *testing.B) {
	_, events := captureDealership(b, benchCars, benchExecs)
	const chunk = 256
	const window = 4 // outstanding batches per writer
	run := func(b *testing.B, opts []LiveOption, writers int) {
		for i := 0; i < b.N; i++ {
			lg, err := OpenLiveGraph("b", b.TempDir(), opts...)
			if err != nil {
				b.Fatal(err)
			}
			var submitMu sync.Mutex
			next := uint64(1)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var outstanding []*PendingAppend
					for {
						submitMu.Lock()
						if next > uint64(len(events)) {
							submitMu.Unlock()
							break
						}
						first := next
						end := first + chunk - 1
						if end > uint64(len(events)) {
							end = uint64(len(events))
						}
						next = end + 1
						p := lg.AppendAsync(first, events[first-1:end])
						submitMu.Unlock()
						outstanding = append(outstanding, p)
						if len(outstanding) >= window {
							if _, err := outstanding[0].Wait(); err != nil {
								b.Error(err)
								return
							}
							outstanding = outstanding[1:]
						}
					}
					for _, p := range outstanding {
						if _, err := p.Wait(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			lg.Close()
		}
		b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
	}
	modes := []struct {
		name string
		opts []LiveOption
	}{
		{"fsync", nil},
		{"nofsync", []LiveOption{WithLogOptions(store.WithFsync(false))}},
		{"group", []LiveOption{WithLogOptions(store.WithGroupCommit(-1, 0))}},
	}
	for _, m := range modes {
		for _, writers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/w%d", m.name, writers), func(b *testing.B) {
				run(b, m.opts, writers)
			})
		}
	}
}

func BenchmarkLiveFindMidIngest(b *testing.B) {
	// Query latency against a live graph while ingestion streams in the
	// background — the "live queries stay indexed" claim under load.
	_, events := captureDealership(b, benchCars, benchExecs)
	lg := NewLiveGraph("b")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(1)
		for {
			for j := 0; j < len(events); j += 256 {
				select {
				case <-stop:
					return
				default:
				}
				end := j + 256
				if end > len(events) {
					end = len(events)
				}
				if seq == 1 || seq <= lg.Seq() { // first pass streams, later passes dedupe
					lg.Append(seq, events[j:end])
					seq += uint64(end - j)
				}
			}
			seq = 1
		}
	}()
	f := NodeFilter{Types: []provgraph.Type{provgraph.TypeInvocation}, Module: "M_dealer1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lg.Read(func(qp *QueryProcessor) error {
			qp.FindNodes(f)
			return nil
		})
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func TestLiveGraphGroupCommitPipelinedMatchesBatch(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Four writers pipeline ordered batches of one stream through
	// AppendAsync (claim + submit under a shared lock, durability waits
	// overlapping) into a group-committed WAL. The result must be
	// indistinguishable from the batch build, and recovery must see every
	// event exactly once.
	batch, events := captureDealership(t, 120, 3)
	dir := t.TempDir()
	lg, err := OpenLiveGraph("d", dir, WithLogOptions(store.WithGroupCommit(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 64
	var submitMu sync.Mutex
	next := uint64(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				submitMu.Lock()
				if next > uint64(len(events)) {
					submitMu.Unlock()
					return
				}
				first := next
				end := first + chunk - 1
				if end > uint64(len(events)) {
					end = uint64(len(events))
				}
				next = end + 1
				p := lg.AppendAsync(first, events[first-1:end])
				submitMu.Unlock()
				if st, err := p.Wait(); err != nil {
					t.Errorf("batch at %d: %v (status %+v)", first, err, st)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if lg.Seq() != uint64(len(events)) {
		t.Fatalf("seq = %d, want %d", lg.Seq(), len(events))
	}
	ps := lg.PipelineStats()
	if ps.GroupCommits < 1 || ps.GroupBatches < ps.GroupCommits {
		t.Fatalf("pipeline stats: %+v", ps)
	}
	if err := lg.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("pipelined ingest differs from batch build")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenLiveGraph("d", dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if restored.Seq() != uint64(len(events)) {
		t.Fatalf("recovered seq %d, want %d", restored.Seq(), len(events))
	}
	if err := restored.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("recovered group-committed graph differs from batch build")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveGraphGroupCommitDuplicateAndGap(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// The idempotence contract (dup-skip, gap rejection) holds unchanged
	// under group commit, including the durable ack of a full duplicate.
	_, events := captureDealership(t, 60, 2)
	lg, err := OpenLiveGraph("d", t.TempDir(), WithLogOptions(store.WithGroupCommit(0, 0), store.WithFsync(false)))
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if _, err := lg.Append(1, events[:50]); err != nil {
		t.Fatal(err)
	}
	st, err := lg.Append(21, events[20:80])
	if err != nil || st.Duplicates != 30 || st.Applied != 30 || st.Seq != 80 {
		t.Fatalf("overlapping retry: %+v err %v", st, err)
	}
	st, err = lg.Append(1, events[:80])
	if err != nil || st.Applied != 0 || st.Duplicates != 80 {
		t.Fatalf("full duplicate: %+v err %v", st, err)
	}
	if lg.Seq() != 80 || lg.log.LastSeq() != 80 {
		t.Fatalf("graph at %d, log at %d, want 80/80", lg.Seq(), lg.log.LastSeq())
	}
	if _, err := lg.Append(100, events[99:]); err == nil {
		t.Fatal("gap accepted")
	} else if _, ok := err.(*SeqGapError); !ok {
		t.Fatalf("gap error type %T", err)
	}
}

func TestLiveGraphAdmissionOverload(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// A full admission queue rejects deterministically with
	// *OverloadedError; draining a slot re-admits.
	_, events := captureDealership(t, 60, 2)
	lg := NewLiveGraph("t", WithIngestQueueDepth(1))
	p := lg.AppendAsync(1, events[:10]) // holds the only slot until Wait
	if p.err != nil {
		t.Fatalf("first append rejected: %v", p.err)
	}
	if _, err := lg.Append(11, events[10:20]); err == nil {
		t.Fatal("overload accepted")
	} else {
		over, ok := err.(*OverloadedError)
		if !ok || over.Name != "t" || over.Depth != 1 {
			t.Fatalf("overload error = %v", err)
		}
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if st, err := lg.Append(11, events[10:20]); err != nil || st.Seq != 20 {
		t.Fatalf("post-drain append: %+v err %v", st, err)
	}
	ps := lg.PipelineStats()
	if ps.QueueDepth != 1 || ps.QueueHighWater != 1 {
		t.Fatalf("pipeline stats: %+v", ps)
	}
}
