package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/workflow"
	"lipstick/internal/workflowgen"
)

// captureDealership runs the dealership generator with streaming capture
// on, returning the batch-built graph and the captured event stream.
func captureDealership(t testing.TB, numCars, numExec int) (*provgraph.Graph, []provgraph.Event) {
	t.Helper()
	log := provgraph.NewEventLog()
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: numCars, NumExec: numExec, Seed: 7,
		Gran: workflow.Fine, StopOnPurchase: false,
		EventSink: log.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Runner.Graph(), log.Drain()
}

func captureArctic(t testing.TB) (*provgraph.Graph, []provgraph.Event) {
	t.Helper()
	log := provgraph.NewEventLog()
	run, err := workflowgen.NewArcticRun(workflowgen.ArcticParams{
		Stations: 4, Topology: workflowgen.Dense, FanOut: 2,
		Selectivity: workflowgen.SelMonth, NumExec: 3, Seed: 3,
		Gran: workflow.Fine, HistoryYears: 2,
		EventSink: log.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	return run.Runner.Graph(), log.Drain()
}

// assertLiveMatchesBatch ingests events into an in-memory live graph in
// batches and asserts the result is indistinguishable from the in-process
// batch build: structure, invocations, and index-backed selection.
func assertLiveMatchesBatch(t *testing.T, batch *provgraph.Graph, events []provgraph.Event) {
	t.Helper()
	lg := NewLiveGraph("t")
	const chunk = 97
	seq := uint64(1)
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		st, err := lg.Append(seq, events[i:end])
		if err != nil {
			t.Fatalf("append at seq %d: %v", seq, err)
		}
		if st.Applied != end-i {
			t.Fatalf("applied %d, want %d", st.Applied, end-i)
		}
		seq += uint64(st.Applied)
	}
	if lg.Seq() != uint64(len(events)) {
		t.Fatalf("seq = %d, want %d", lg.Seq(), len(events))
	}
	if err := lg.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("ingested graph differs from batch build")
		}
		if batch.NumInvocations() != qp.Graph().NumInvocations() {
			t.Fatalf("invocations: %d vs %d", batch.NumInvocations(), qp.Graph().NumInvocations())
		}
		for i := 0; i < batch.NumInvocations(); i++ {
			a, b := batch.Invocation(provgraph.InvID(i)), qp.Graph().Invocation(provgraph.InvID(i))
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("invocation %d differs:\nbatch %+v\nlive  %+v", i, a, b)
			}
		}
		// The incrementally grown postings must equal a from-scratch index.
		want := store.BuildIndex(batch)
		got := qp.Index().data
		if !reflect.DeepEqual(want, got) {
			t.Fatal("live postings index differs from BuildIndex of the batch graph")
		}
		// And index-backed selection answers like a batch processor.
		ref := NewQueryProcessor(&store.Snapshot{Graph: batch})
		for _, f := range []NodeFilter{
			{Types: []provgraph.Type{provgraph.TypeInvocation}},
			{Module: "M_dealer1"},
			{Ops: []provgraph.Op{provgraph.OpAgg}, Label: "MIN"},
			{Types: []provgraph.Type{provgraph.TypeBaseTuple}, Label: "d1.car0"},
		} {
			if want, got := ref.FindNodes(f), qp.FindNodes(f); !reflect.DeepEqual(want, got) {
				t.Fatalf("FindNodes(%+v): batch %v, live %v", f, want, got)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveGraphMatchesBatchDealership(t *testing.T) {
	batch, events := captureDealership(t, 120, 3)
	if len(events) == 0 {
		t.Fatal("capture produced no events")
	}
	assertLiveMatchesBatch(t, batch, events)
}

func TestLiveGraphMatchesBatchArctic(t *testing.T) {
	batch, events := captureArctic(t)
	assertLiveMatchesBatch(t, batch, events)
}

func TestLiveGraphMatchesBatchParallelCapture(t *testing.T) {
	// A parallel run's drained event stream must replay to the same graph
	// a sequential run builds.
	log := provgraph.NewEventLog()
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: 120, NumExec: 3, Seed: 7,
		Gran: workflow.Fine, StopOnPurchase: false, Parallelism: 4,
		EventSink: log.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	sequential, _ := captureDealership(t, 120, 3)
	replayed, err := provgraph.Replay(log.Drain())
	if err != nil {
		t.Fatal(err)
	}
	if !sequential.StructurallyEqual(replayed) {
		t.Fatal("parallel capture replay differs from sequential build")
	}
	_ = run
}

func TestLiveGraphDuplicateAndGapBatches(t *testing.T) {
	_, events := captureDealership(t, 60, 2)
	lg := NewLiveGraph("t")
	if _, err := lg.Append(1, events[:50]); err != nil {
		t.Fatal(err)
	}
	// A retried (overlapping) batch is absorbed without duplication.
	st, err := lg.Append(21, events[20:80])
	if err != nil {
		t.Fatalf("overlapping retry: %v", err)
	}
	if st.Duplicates != 30 || st.Applied != 30 || st.Seq != 80 {
		t.Fatalf("retry status = %+v, want 30 dup / 30 applied / seq 80", st)
	}
	// A fully duplicate batch is a no-op.
	st, err = lg.Append(1, events[:80])
	if err != nil || st.Applied != 0 || st.Seq != 80 {
		t.Fatalf("full duplicate: status %+v err %v", st, err)
	}
	// A gap is rejected and does not advance the stream.
	if _, err := lg.Append(100, events[99:]); err == nil {
		t.Fatal("gap accepted")
	} else if _, ok := err.(*SeqGapError); !ok {
		t.Fatalf("gap error type %T, want *SeqGapError", err)
	}
	if lg.Seq() != 80 {
		t.Fatalf("seq moved to %d on rejected batch", lg.Seq())
	}
}

func TestLiveGraphCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	batch, events := captureDealership(t, 120, 3)
	mid := len(events) / 2

	lg, err := OpenLiveGraph("d", dir, WithLogOptions(store.WithSegmentLimit(64<<10), store.WithFsync(false)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append(1, events[:mid]); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append(uint64(mid)+1, events[mid:]); err != nil {
		t.Fatal(err)
	}
	// Simulated kill: the process dies without Close. (Appends flush per
	// batch, so the on-disk log is complete.)
	lg = nil

	restored, err := OpenLiveGraph("d", dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if restored.Seq() != uint64(len(events)) {
		t.Fatalf("recovered seq %d, want %d (lost or duplicated events)", restored.Seq(), len(events))
	}
	if restored.CheckpointSeq() != uint64(mid) {
		t.Fatalf("checkpoint seq %d, want %d", restored.CheckpointSeq(), mid)
	}
	if err := restored.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("recovered graph differs from batch build")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A client retry of the final batch after restart must dedupe.
	st, err := restored.Append(uint64(mid)+1, events[mid:])
	if err != nil || st.Applied != 0 {
		t.Fatalf("post-recovery retry applied %d events (err %v)", st.Applied, err)
	}
}

func TestLiveGraphTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	batch, events := captureDealership(t, 60, 2)
	lg, err := OpenLiveGraph("d", dir, WithLogOptions(store.WithFsync(false)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append(1, events); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record, as a kill mid-write would.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.lpwal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	restored, err := OpenLiveGraph("d", dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	lost := uint64(len(events)) - restored.Seq()
	if lost == 0 {
		t.Fatal("expected the torn record to be dropped")
	}
	// The sender's retry path: resend from its own position; overlap
	// dedupes, the torn suffix is re-applied.
	if _, err := restored.Append(uint64(len(events)-int(lost)-3), events[len(events)-int(lost)-4:]); err != nil {
		t.Fatalf("repair append: %v", err)
	}
	if restored.Seq() != uint64(len(events)) {
		t.Fatalf("repaired seq %d, want %d", restored.Seq(), len(events))
	}
	if err := restored.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("repaired graph differs from batch build")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveGraphConcurrentIngestAndReads(t *testing.T) {
	// Readers query through the full surface while the writer streams
	// batches — run under -race in CI.
	_, events := captureDealership(t, 120, 3)
	lg := NewLiveGraph("race")
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = lg.Read(func(qp *QueryProcessor) error {
					nodes := qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeInvocation}})
					if len(nodes) > 0 {
						qp.Lineage(nodes[len(nodes)-1])
						qp.Subgraph(nodes[0])
						qp.WhatIfDelete(nodes[0])
					}
					qp.Graph().ComputeStats()
					return nil
				})
				_ = lg.Info()
			}
		}()
	}
	seq := uint64(1)
	const chunk = 50
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		if _, err := lg.Append(seq, events[i:end]); err != nil {
			t.Fatal(err)
		}
		seq = lg.Seq() + 1
	}
	close(done)
	wg.Wait()
	if lg.Seq() != uint64(len(events)) {
		t.Fatalf("seq = %d, want %d", lg.Seq(), len(events))
	}
}

func TestRegistryLiveGraphs(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "mini.lpsk")
	r := NewRegistry(nil)
	if err := r.Register("mini", path); err != nil {
		t.Fatal(err)
	}
	lg, err := r.OpenLive("stream")
	if err != nil {
		t.Fatal(err)
	}
	if again, err := r.OpenLive("stream"); err != nil || again != lg {
		t.Fatalf("OpenLive is not idempotent (err %v)", err)
	}
	if _, err := r.OpenLive("mini"); err == nil {
		t.Fatal("OpenLive accepted a static snapshot's name")
	}
	if err := r.Register("stream", path); err == nil {
		t.Fatal("Register accepted a live graph's name")
	}
	if _, err := r.LiveGraph("ghost"); err == nil {
		t.Fatal("LiveGraph resolved an unknown name")
	}
	if _, err := r.CreateSession("stream"); err == nil {
		t.Fatal("CreateSession accepted a live graph")
	}
	snaps := r.Snapshots()
	if len(snaps) != 2 || r.NumSnapshots() != 2 {
		t.Fatalf("snapshots: %+v", snaps)
	}
	if snaps[0].Name != "mini" || snaps[0].Kind != "static" ||
		snaps[1].Name != "stream" || snaps[1].Kind != "live" {
		t.Fatalf("listing: %+v", snaps)
	}
}

func TestRegistryRestoreLiveDir(t *testing.T) {
	dir := t.TempDir()
	liveDir := filepath.Join(dir, "live")
	_, events := captureDealership(t, 60, 2)

	r := NewRegistry(nil, WithLiveDir(liveDir), WithLiveOptions(WithLogOptions(store.WithFsync(false))))
	lg, err := r.OpenLive("run1")
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Durable() {
		t.Fatal("live graph under a live dir must be durable")
	}
	if _, err := lg.Append(1, events); err != nil {
		t.Fatal(err)
	}

	r2 := NewRegistry(nil, WithLiveDir(liveDir))
	names, err := r2.RestoreLiveDir()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "run1" {
		t.Fatalf("restored %v, want [run1]", names)
	}
	restored, err := r2.LiveGraph("run1")
	if err != nil {
		t.Fatal(err)
	}
	if restored.Seq() != uint64(len(events)) {
		t.Fatalf("restored seq %d, want %d", restored.Seq(), len(events))
	}
}

func TestSessionFork(t *testing.T) {
	dir := t.TempDir()
	path := saveDealershipSnapshot(t, dir)
	r := NewRegistry(nil)
	if err := r.Register("d", path); err != nil {
		t.Fatal(err)
	}
	parent, err := r.CreateSession("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.ZoomOut("M_agg"); err != nil {
		t.Fatal(err)
	}
	inputs := parent.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeWorkflowInput}})
	if len(inputs) == 0 {
		t.Fatal("no workflow inputs to delete")
	}
	parent.ApplyDelete(inputs[0])

	child, err := r.ForkSession(parent.ID())
	if err != nil {
		t.Fatal(err)
	}
	if child.ID() == parent.ID() {
		t.Fatal("fork reused the parent id")
	}
	if child.SnapshotName() != "d" || child.Changes() != parent.Changes() {
		t.Fatalf("fork state: snapshot %q changes %d vs parent %d",
			child.SnapshotName(), child.Changes(), parent.Changes())
	}
	parentView, childView := sessionView(parent), sessionView(child)
	if !provgraph.ViewsStructurallyEqual(parentView, childView) {
		t.Fatal("forked view differs from parent")
	}
	// The fork inherits the zoom stack: zooming back in must work.
	if _, err := child.ZoomIn(); err != nil {
		t.Fatalf("fork zoom-in: %v", err)
	}
	// And the two sessions diverge independently.
	parent.ApplyDelete(inputs[len(inputs)-1])
	if provgraph.ViewsStructurallyEqual(sessionView(parent), sessionView(child)) {
		t.Fatal("parent mutation leaked into the fork (or vice versa)")
	}
	if _, err := r.ForkSession("sess-missing"); err == nil {
		t.Fatal("forking an unknown session succeeded")
	}
}

// saveDealershipSnapshot tracks a small dealership run and saves it.
func saveDealershipSnapshot(t testing.TB, dir string) string {
	t.Helper()
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: 60, NumExec: 2, Seed: 7, Gran: workflow.Fine,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dealership.lpsk")
	if err := store.Save(path, &store.Snapshot{Graph: run.Runner.Graph()}); err != nil {
		t.Fatal(err)
	}
	return path
}

func BenchmarkLiveIngest(b *testing.B) {
	_, events := captureDealership(b, benchCars, benchExecs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg := NewLiveGraph(fmt.Sprintf("b%d", i))
		seq := uint64(1)
		const chunk = 512
		for j := 0; j < len(events); j += chunk {
			end := j + chunk
			if end > len(events) {
				end = len(events)
			}
			if _, err := lg.Append(seq, events[j:end]); err != nil {
				b.Fatal(err)
			}
			seq += uint64(end - j)
		}
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkLiveIngestDurable(b *testing.B) {
	_, events := captureDealership(b, benchCars, benchExecs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg, err := OpenLiveGraph("b", b.TempDir(), WithLogOptions(store.WithFsync(false)))
		if err != nil {
			b.Fatal(err)
		}
		seq := uint64(1)
		const chunk = 512
		for j := 0; j < len(events); j += chunk {
			end := j + chunk
			if end > len(events) {
				end = len(events)
			}
			if _, err := lg.Append(seq, events[j:end]); err != nil {
				b.Fatal(err)
			}
			seq += uint64(end - j)
		}
		lg.Close()
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkLiveFindMidIngest(b *testing.B) {
	// Query latency against a live graph while ingestion streams in the
	// background — the "live queries stay indexed" claim under load.
	_, events := captureDealership(b, benchCars, benchExecs)
	lg := NewLiveGraph("b")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(1)
		for {
			for j := 0; j < len(events); j += 256 {
				select {
				case <-stop:
					return
				default:
				}
				end := j + 256
				if end > len(events) {
					end = len(events)
				}
				if seq == 1 || seq <= lg.Seq() { // first pass streams, later passes dedupe
					lg.Append(seq, events[j:end])
					seq += uint64(end - j)
				}
			}
			seq = 1
		}
	}()
	f := NodeFilter{Types: []provgraph.Type{provgraph.TypeInvocation}, Module: "M_dealer1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lg.Read(func(qp *QueryProcessor) error {
			qp.FindNodes(f)
			return nil
		})
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
