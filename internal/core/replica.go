package core

import (
	"fmt"

	"lipstick/internal/provgraph"
)

// Replication accessors of a live graph: a primary exposes its durable
// WAL suffix and newest checkpoint so a follower can bootstrap (download
// the checkpoint, recover it) and then tail (poll DurableEventsSince,
// re-Append locally). Both delegate to the log, which synchronizes its
// own I/O, so no LiveGraph lock is involved.

// NotDurableError reports a replication request against an in-memory
// live graph: without a WAL there is no durable stream to follow.
type NotDurableError struct {
	Name string
}

// Error implements error.
func (e *NotDurableError) Error() string {
	return fmt.Sprintf("lipstick: live graph %q has no write-ahead log; replication requires a durable (-live) primary", e.Name)
}

// DurableSeq returns the sequence of the last durable (written + synced,
// per the log's policy) event. It can trail Seq: events applied to memory
// whose group commit has not completed are not yet offered to followers.
func (l *LiveGraph) DurableSeq() (uint64, error) {
	if l.log == nil {
		return 0, &NotDurableError{Name: l.name}
	}
	return l.log.LastSeq(), nil
}

// DurableEventsSince returns up to max (<= 0: unbounded) durable events
// with sequences afterSeq+1, afterSeq+2, ... — the follower-catchup read.
// A *store.CompactedError means the suffix was checkpointed away and the
// follower must re-seed from CheckpointFile.
func (l *LiveGraph) DurableEventsSince(afterSeq uint64, max int) ([]provgraph.Event, error) {
	if l.log == nil {
		return nil, &NotDurableError{Name: l.name}
	}
	return l.log.EventsSince(afterSeq, max)
}

// CheckpointFile returns the path of the newest durable checkpoint and
// the sequence it covers; ok is false when no checkpoint exists yet (the
// follower then replays the stream from sequence 1).
func (l *LiveGraph) CheckpointFile() (path string, seq uint64, ok bool, err error) {
	if l.log == nil {
		return "", 0, false, &NotDurableError{Name: l.name}
	}
	path, seq, ok = l.log.CheckpointPath()
	return path, seq, ok, nil
}
