package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"lipstick/internal/nested"
	"lipstick/internal/pig"
	"lipstick/internal/provgraph"
	"lipstick/internal/workflow"
)

// miniWorkflow builds a 3-node workflow: source -> stateful filter+join ->
// aggregate, small enough to reason about exactly.
func miniWorkflow(t *testing.T) *workflow.Workflow {
	t.Helper()
	str := nested.ScalarType(nested.KindString)
	flt := nested.ScalarType(nested.KindFloat)
	itemsSchema := nested.NewSchema(
		nested.Field{Name: "Sku", Type: str},
		nested.Field{Name: "Price", Type: flt},
	)
	reqSchema := nested.NewSchema(nested.Field{Name: "Sku", Type: str})
	outSchema := nested.NewSchema(nested.Field{Name: "Total", Type: flt})

	src := &workflow.Module{Name: "M_src", Out: nested.RelationSchemas{"Req": reqSchema}}
	match := &workflow.Module{
		Name:  "M_match",
		In:    nested.RelationSchemas{"Req": reqSchema},
		State: nested.RelationSchemas{"Items": itemsSchema},
		Out:   nested.RelationSchemas{"Matches": itemsSchema},
		Program: `
MJ = JOIN Items BY Sku, Req BY Sku;
Matches = FOREACH MJ GENERATE Items::Sku AS Sku, Items::Price AS Price;
`,
		Registry: pig.NewRegistry(),
	}
	agg := &workflow.Module{
		Name: "M_total",
		In:   nested.RelationSchemas{"Matches": itemsSchema},
		Out:  nested.RelationSchemas{"Totals": outSchema},
		Program: `
G = GROUP Matches BY 1;
Totals = FOREACH G GENERATE SUM(Matches.Price) AS Total;
`,
	}
	w := workflow.New()
	for name, m := range map[string]*workflow.Module{"src": src, "match": match, "total": agg} {
		if err := w.AddNode(name, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddEdge("src", "match", "Req"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddEdge("match", "total", "Matches"); err != nil {
		t.Fatal(err)
	}
	w.In = []string{"src"}
	w.Out = []string{"total"}
	return w
}

func trackMini(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(miniWorkflow(t), workflow.Fine)
	if err != nil {
		t.Fatal(err)
	}
	items := nested.NewBag(
		nested.NewTuple(nested.Str("A"), nested.Float(10)),
		nested.NewTuple(nested.Str("A"), nested.Float(12)),
		nested.NewTuple(nested.Str("B"), nested.Float(99)),
	)
	if err := tr.Runner().SetState("M_match", "Items", items, "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Execute(workflow.Inputs{"src": {"Req": nested.NewBag(nested.NewTuple(nested.Str("A")))}}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrackerRoundTripThroughDisk(t *testing.T) {
	tr := trackMini(t)
	path := filepath.Join(t.TempDir(), "run.lpsk")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	qp, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !qp.Graph().StructurallyEqual(tr.Runner().Graph()) {
		t.Error("loaded graph differs from the tracked graph")
	}
	if len(qp.Outputs()) != 1 {
		t.Fatalf("outputs = %v", qp.Outputs())
	}
	dump, ok := qp.Output(0, "total", "Totals")
	if !ok || len(dump.Tuples) != 1 {
		t.Fatalf("missing Totals output")
	}
	if !dump.Tuples[0].Tuple.Equal(nested.NewTuple(nested.Float(22))) {
		t.Errorf("total = %v, want 22", dump.Tuples[0].Tuple)
	}
}

func TestReadFromStream(t *testing.T) {
	tr := trackMini(t)
	var buf bytes.Buffer
	if err := tr.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	qp, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if qp.Graph().NumNodes() == 0 {
		t.Error("empty graph after stream read")
	}
}

func TestFindOutputTupleAndDependency(t *testing.T) {
	tr := trackMini(t)
	qp := FromTracker(tr)
	total, ok := qp.FindOutputTuple("total", "Totals", nested.NewTuple(nested.Float(22)))
	if !ok {
		t.Fatal("total tuple not found")
	}
	// The total depends on the request...
	inputs := qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeWorkflowInput}})
	if len(inputs) != 1 {
		t.Fatalf("inputs = %v", inputs)
	}
	if !qp.DependsOn(total, inputs[0]) {
		t.Error("total should depend on the request")
	}
	// ...but not on any single matching item (two A items; the SUM and the
	// group survive losing one).
	items := qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeBaseTuple}})
	if len(items) != 3 {
		t.Fatalf("base tuples = %d", len(items))
	}
	for _, item := range items {
		if qp.DependsOn(total, item) {
			t.Errorf("total should not existentially depend on item %d", item)
		}
	}
}

func TestWhatIfVersusApplyDelete(t *testing.T) {
	tr := trackMini(t)
	qp := FromTracker(tr)
	items := qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeBaseTuple}, Label: "item0"})
	if len(items) != 1 {
		t.Fatalf("item0 nodes = %v", items)
	}
	before := qp.Graph().NumNodes()
	whatIf := qp.WhatIfDelete(items[0])
	if whatIf.Size() == 0 {
		t.Error("deleting a matched item must remove something")
	}
	if qp.Graph().NumNodes() != before {
		t.Error("WhatIfDelete must not modify the graph")
	}
	res, recs := qp.ApplyDelete(items[0])
	if res.Size() != whatIf.Size() {
		t.Error("ApplyDelete should remove what WhatIfDelete predicted")
	}
	// The SUM over {10, 12} must be recomputed to 12 after deleting the
	// 10-priced item (item0).
	found := false
	for _, rec := range recs {
		if rec.Op == "SUM" && rec.After.Equal(nested.Float(12)) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected SUM recomputation to 12, got %v", recs)
	}
}

func TestZoomStack(t *testing.T) {
	tr := trackMini(t)
	qp := FromTracker(tr)
	orig := qp.Graph().Clone()

	if err := qp.ZoomOut("M_match"); err != nil {
		t.Fatal(err)
	}
	if err := qp.ZoomOut("M_match"); err == nil {
		t.Error("double zoom-out of the same module accepted")
	}
	if err := qp.ZoomOut("M_nope"); err == nil {
		t.Error("zooming unknown module accepted")
	}
	if got := qp.ZoomedOut(); len(got) != 1 || got[0] != "M_match" {
		t.Errorf("ZoomedOut = %v", got)
	}
	if err := qp.ZoomOut("M_total"); err != nil {
		t.Fatal(err)
	}
	if err := qp.ZoomIn(); err != nil {
		t.Fatal(err)
	}
	if err := qp.ZoomIn(); err != nil {
		t.Fatal(err)
	}
	if err := qp.ZoomIn(); err == nil {
		t.Error("ZoomIn with empty stack accepted")
	}
	if !qp.Graph().StructurallyEqual(orig) {
		t.Error("zoom stack did not restore the original graph")
	}
}

func TestCoarseView(t *testing.T) {
	tr := trackMini(t)
	qp := FromTracker(tr)
	if err := qp.CoarseView(); err != nil {
		t.Fatal(err)
	}
	qp.Graph().Nodes(func(n provgraph.Node) bool {
		switch n.Type {
		case provgraph.TypeOp, provgraph.TypeState:
			t.Errorf("coarse view contains %s node", n.Type)
		}
		return true
	})
	// Coarse view: total now *does* depend on every item? No — items are
	// hidden entirely; inputs remain.
	if len(qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeBaseTuple}})) != 0 {
		t.Error("coarse view should hide state base tuples")
	}
	if err := qp.ZoomIn(); err != nil {
		t.Fatal(err)
	}
	if len(qp.ZoomedOut()) != 0 {
		t.Error("zoom bookkeeping broken")
	}
}

func TestLineageAndFilters(t *testing.T) {
	tr := trackMini(t)
	qp := FromTracker(tr)
	total, _ := qp.FindOutputTuple("total", "Totals", nested.NewTuple(nested.Float(22)))
	l := qp.Lineage(total)
	if len(l.Inputs) != 1 {
		t.Errorf("lineage inputs = %v", l.Inputs)
	}
	if len(l.StateTuples) != 2 {
		t.Errorf("lineage state tuples = %d, want 2 (the two A items)", len(l.StateTuples))
	}
	wantModules := []string{"M_match", "M_total"}
	if len(l.Modules) != 2 || l.Modules[0] != wantModules[0] || l.Modules[1] != wantModules[1] {
		t.Errorf("lineage modules = %v", l.Modules)
	}
	if l.AncestorCount == 0 {
		t.Error("no ancestors")
	}

	// Filters.
	aggs := qp.FindNodes(NodeFilter{Ops: []provgraph.Op{provgraph.OpAgg}})
	if len(aggs) != 1 || qp.Graph().Node(aggs[0]).Label != "SUM" {
		t.Errorf("agg nodes = %v", aggs)
	}
	matchNodes := qp.FindNodes(NodeFilter{Module: "M_match", Types: []provgraph.Type{provgraph.TypeModuleOutput}})
	if len(matchNodes) != 2 {
		t.Errorf("M_match outputs = %d, want 2", len(matchNodes))
	}
	vnodes := qp.FindNodes(NodeFilter{Classes: []provgraph.Class{provgraph.ClassV}})
	if len(vnodes) == 0 {
		t.Error("no value nodes found")
	}
}

func TestExprAndPolynomial(t *testing.T) {
	tr := trackMini(t)
	qp := FromTracker(tr)
	total, _ := qp.FindOutputTuple("total", "Totals", nested.NewTuple(nested.Float(22)))
	p := qp.Polynomial(total)
	if p.IsZero() {
		t.Error("polynomial of a derived tuple must be nonzero")
	}
	e := qp.Expr(total)
	if e.String() == "" {
		t.Error("empty expression")
	}
}
