package core

import (
	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

// liveIndex is the postings index of a LiveGraph, organized so that
// publishing an immutable point-in-time snapshot of it is O(1) in the
// graph size. The old design kept one mutable map per dimension, which a
// snapshot would have to deep-copy key by key — O(distinct keys), and the
// label dimension can have a key per node. Instead the index is layered
// like a small LSM tree:
//
//   - The type and op dimensions have tiny fixed key domains (uint8), so
//     they are flat per-key append-only runs. A snapshot clips each run
//     to its current length; the writer's subsequent appends land at
//     indices at or past every clipped length (or in a reallocated
//     array), so shared runs are never overwritten.
//   - The string-keyed dimensions (label, module, module invocations)
//     are a stack of sealed, immutable run maps plus one private delta
//     map the writer inserts into. Publishing seals the delta — the map
//     itself becomes the newest immutable level and the writer starts a
//     fresh one — so a snapshot is just a copy of the level stack's
//     outer slice. Size-tiered compaction merges the newest two levels
//     (into brand-new maps and slices) whenever the newer rivals the
//     older, keeping lookups O(log n) levels deep.
//   - Postings recovered from a checkpoint snapshot (possibly an mmap'd
//     v3 section) sit below everything as an immutable base level that
//     is never copied, only consulted.
//
// The writer mutates the index under the live graph's write locks; a
// published pubPostings is immutable and safe for any number of
// lock-free readers. liveIndex itself implements store.Postings for the
// locked read path, so the locked QueryProcessor sees every applied
// event immediately.
type liveIndex struct {
	base store.Postings // immutable checkpoint postings; nil for fresh graphs
	n    int            // node slots covered (tracks graph.TotalNodes())

	// byType/byOp: live append runs per key. A nil run means "not yet
	// adopted" — lookups fall through to base. The first append adopts
	// the base run by appending to a capacity-clipped alias, which
	// reallocates into writable memory exactly once per key.
	byType [256][]provgraph.NodeID
	byOp   [256][]provgraph.NodeID

	label   lsmRuns[provgraph.NodeID] // node ids ascend: concat merge
	module  lsmRuns[provgraph.NodeID] // EvSetNodeInv mid-inserts: sorted union
	modInvs lsmRuns[provgraph.InvID]  // invocation ids ascend: concat merge
}

// newLiveIndex builds the live index over a graph and its recovered
// checkpoint postings (nil when starting empty: everything the graph
// holds will arrive as replayed or ingested events).
func newLiveIndex(g *provgraph.Graph, base store.Postings) *liveIndex {
	ix := &liveIndex{base: base}
	if base != nil {
		ix.n = base.Coverage()
	} else {
		ix.n = g.TotalNodes()
	}
	ix.module.needSort = true
	return ix
}

// --- writer side (callers hold the live graph's write locks) ---

// addNode indexes one appended node; module is the node's invocation
// module ("" when unanchored).
func (ix *liveIndex) addNode(n provgraph.Node, module string) {
	ix.n++
	appendRun(&ix.byType[n.Type], baseOrNil(ix.base, func(p store.Postings) []provgraph.NodeID { return p.TypeIDs(n.Type) }), n.ID)
	appendRun(&ix.byOp[n.Op], baseOrNil(ix.base, func(p store.Postings) []provgraph.NodeID { return p.OpIDs(n.Op) }), n.ID)
	if n.Label != "" {
		ix.label.add(n.Label, n.ID)
	}
	if module != "" {
		ix.module.insert(module, n.ID)
	}
}

// setNodeModule adds id to module's postings after an EvSetNodeInv
// back-reference (the node predates its invocation record, so its id may
// sit below already-indexed ones — hence the sorted insert).
func (ix *liveIndex) setNodeModule(module string, id provgraph.NodeID) {
	ix.module.insert(module, id)
}

// addInvocation indexes one opened invocation.
func (ix *liveIndex) addInvocation(module string, inv provgraph.InvID) {
	ix.modInvs.add(module, inv)
}

// appendRun appends id to a live run, adopting the base run on first
// touch. The clip forces the first append to reallocate instead of
// writing into base memory (which may be a shared or mapped snapshot).
func appendRun(run *[]provgraph.NodeID, base []provgraph.NodeID, id provgraph.NodeID) {
	if *run == nil && base != nil {
		*run = base[:len(base):len(base)]
	}
	*run = append(*run, id)
}

// baseOrNil lifts a base accessor over a possibly-nil base.
func baseOrNil[T any](base store.Postings, get func(store.Postings) []T) []T {
	if base == nil {
		return nil
	}
	return get(base)
}

// publish seals the delta of every string dimension and returns an
// immutable snapshot of the whole index. O(1) in graph size: flat runs
// are clipped, level stacks are outer-slice copies sharing the sealed
// maps, and the base is carried by reference.
func (ix *liveIndex) publish() *pubPostings {
	ix.label.seal()
	ix.module.seal()
	ix.modInvs.seal()
	pp := &pubPostings{
		base:    ix.base,
		n:       ix.n,
		label:   ix.label.snapshot(),
		module:  ix.module.snapshot(),
		modInvs: ix.modInvs.snapshot(),
	}
	for i, run := range ix.byType {
		pp.byType[i] = run[:len(run):len(run)]
	}
	for i, run := range ix.byOp {
		pp.byOp[i] = run[:len(run):len(run)]
	}
	return pp
}

// --- locked read side (store.Postings over the always-current state) ---

// Coverage implements store.Postings. It tracks the graph's node count,
// so the query layer's post-index tail sweep is always empty.
func (ix *liveIndex) Coverage() int { return ix.n }

// TypeIDs implements store.Postings.
func (ix *liveIndex) TypeIDs(t provgraph.Type) []provgraph.NodeID {
	if run := ix.byType[t]; run != nil {
		return run
	}
	return baseOrNil(ix.base, func(p store.Postings) []provgraph.NodeID { return p.TypeIDs(t) })
}

// OpIDs implements store.Postings.
func (ix *liveIndex) OpIDs(o provgraph.Op) []provgraph.NodeID {
	if run := ix.byOp[o]; run != nil {
		return run
	}
	return baseOrNil(ix.base, func(p store.Postings) []provgraph.NodeID { return p.OpIDs(o) })
}

// LabelIDs implements store.Postings.
func (ix *liveIndex) LabelIDs(label string) []provgraph.NodeID {
	return ix.label.get(label, baseOrNil(ix.base, func(p store.Postings) []provgraph.NodeID { return p.LabelIDs(label) }))
}

// ModuleIDs implements store.Postings.
func (ix *liveIndex) ModuleIDs(module string) []provgraph.NodeID {
	return ix.module.get(module, baseOrNil(ix.base, func(p store.Postings) []provgraph.NodeID { return p.ModuleIDs(module) }))
}

// ModuleInvocations implements store.Postings.
func (ix *liveIndex) ModuleInvocations(module string) []provgraph.InvID {
	return ix.modInvs.get(module, baseOrNil(ix.base, func(p store.Postings) []provgraph.InvID { return p.ModuleInvocations(module) }))
}

// pubPostings is one published, immutable snapshot of a liveIndex. Any
// number of goroutines may query it without synchronization.
type pubPostings struct {
	base store.Postings
	n    int

	byType [256][]provgraph.NodeID
	byOp   [256][]provgraph.NodeID

	label   lsmSnapshot[provgraph.NodeID]
	module  lsmSnapshot[provgraph.NodeID]
	modInvs lsmSnapshot[provgraph.InvID]
}

// Coverage implements store.Postings.
func (p *pubPostings) Coverage() int { return p.n }

// TypeIDs implements store.Postings.
func (p *pubPostings) TypeIDs(t provgraph.Type) []provgraph.NodeID {
	if run := p.byType[t]; run != nil {
		return run
	}
	return baseOrNil(p.base, func(b store.Postings) []provgraph.NodeID { return b.TypeIDs(t) })
}

// OpIDs implements store.Postings.
func (p *pubPostings) OpIDs(o provgraph.Op) []provgraph.NodeID {
	if run := p.byOp[o]; run != nil {
		return run
	}
	return baseOrNil(p.base, func(b store.Postings) []provgraph.NodeID { return b.OpIDs(o) })
}

// LabelIDs implements store.Postings.
func (p *pubPostings) LabelIDs(label string) []provgraph.NodeID {
	return p.label.get(label, baseOrNil(p.base, func(b store.Postings) []provgraph.NodeID { return b.LabelIDs(label) }))
}

// ModuleIDs implements store.Postings.
func (p *pubPostings) ModuleIDs(module string) []provgraph.NodeID {
	return p.module.get(module, baseOrNil(p.base, func(b store.Postings) []provgraph.NodeID { return b.ModuleIDs(module) }))
}

// ModuleInvocations implements store.Postings.
func (p *pubPostings) ModuleInvocations(module string) []provgraph.InvID {
	return p.modInvs.get(module, baseOrNil(p.base, func(b store.Postings) []provgraph.InvID { return b.ModuleInvocations(module) }))
}

// lsmRuns is one string-keyed dimension's level stack plus write delta.
// Level maps are immutable once sealed; the delta belongs to the writer
// alone, so mid-list inserts there need no copy-on-write. needSort
// selects the cross-run merge: false means runs are disjoint ascending
// ranges in stack order (ids only ever append in ascending order) and
// concatenate; true (module dimension) means a run may interleave with
// older ones and lookups take a sorted union.
type lsmRuns[T ~int32] struct {
	needSort bool
	levels   []map[string][]T // sealed immutable runs, oldest first
	sizes    []int            // total ids per level, for compaction
	delta    map[string][]T   // private to the writer
	deltaN   int
}

// add appends v to key's delta run (v must be >= every id previously
// added under key; event streams deliver node and invocation ids in
// ascending order).
func (t *lsmRuns[T]) add(key string, v T) {
	if t.delta == nil {
		t.delta = make(map[string][]T)
	}
	t.delta[key] = append(t.delta[key], v)
	t.deltaN++
}

// insert adds v to key's delta run keeping it sorted and duplicate-free.
func (t *lsmRuns[T]) insert(key string, v T) {
	if t.delta == nil {
		t.delta = make(map[string][]T)
	}
	list := t.delta[key]
	if n := len(list); n == 0 || list[n-1] < v {
		t.delta[key] = append(list, v)
		t.deltaN++
		return
	}
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == v {
		return
	}
	list = append(list, 0)
	copy(list[lo+1:], list[lo:])
	list[lo] = v
	t.delta[key] = list
	t.deltaN++
}

// get merges key's runs across base, levels, and delta.
func (t *lsmRuns[T]) get(key string, base []T) []T {
	return mergeKeyRuns(t.levels, t.delta, base, key, t.needSort)
}

// seal freezes the delta as the newest level and compacts. After seal
// the delta map is never written again, which is what lets snapshots
// share it by reference.
func (t *lsmRuns[T]) seal() {
	if t.deltaN == 0 {
		return
	}
	t.levels = append(t.levels, t.delta)
	t.sizes = append(t.sizes, t.deltaN)
	t.delta = nil
	t.deltaN = 0
	// Size-tiered compaction: while the newest level rivals its elder,
	// merge the two into brand-new maps. Slices for keys present in both
	// are merged into fresh arrays; single-side keys alias the old level
	// (immutable-to-immutable sharing). Published snapshots hold their
	// own copy of the level stack, so replacing ours cannot disturb them.
	for n := len(t.levels); n >= 2 && t.sizes[n-1]*2 >= t.sizes[n-2]; n = len(t.levels) {
		a, b := t.levels[n-2], t.levels[n-1]
		merged := make(map[string][]T, len(a)+len(b))
		for k, av := range a {
			if bv, ok := b[k]; ok {
				merged[k] = mergeTwoRuns(av, bv, t.needSort)
			} else {
				merged[k] = av
			}
		}
		for k, bv := range b {
			if _, ok := a[k]; !ok {
				merged[k] = bv
			}
		}
		t.levels[n-2] = merged
		t.sizes[n-2] += t.sizes[n-1]
		t.levels = t.levels[:n-1]
		t.sizes = t.sizes[:n-1]
	}
}

// snapshot captures the sealed level stack (call after seal: the delta
// must be empty, or the snapshot would miss it).
func (t *lsmRuns[T]) snapshot() lsmSnapshot[T] {
	return lsmSnapshot[T]{needSort: t.needSort, levels: append([]map[string][]T(nil), t.levels...)}
}

// lsmSnapshot is the immutable published form of an lsmRuns stack.
type lsmSnapshot[T ~int32] struct {
	needSort bool
	levels   []map[string][]T
}

func (s lsmSnapshot[T]) get(key string, base []T) []T {
	return mergeKeyRuns(s.levels, nil, base, key, s.needSort)
}

// mergeKeyRuns collects key's non-empty runs bottom-up and merges them.
// Zero or one run short-circuits to the run itself (shared, not copied —
// store.Postings results are read-only by contract).
func mergeKeyRuns[T ~int32](levels []map[string][]T, delta map[string][]T, base []T, key string, needSort bool) []T {
	var only []T
	count := 0
	if len(base) > 0 {
		only = base
		count++
	}
	for _, lvl := range levels {
		if run := lvl[key]; len(run) > 0 {
			only = run
			count++
		}
	}
	if run := delta[key]; len(run) > 0 {
		only = run
		count++
	}
	if count <= 1 {
		return only
	}
	parts := make([][]T, 0, count)
	if len(base) > 0 {
		parts = append(parts, base)
	}
	for _, lvl := range levels {
		if run := lvl[key]; len(run) > 0 {
			parts = append(parts, run)
		}
	}
	if run := delta[key]; len(run) > 0 {
		parts = append(parts, run)
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = mergeTwoRuns(out, p, needSort)
	}
	return out
}

// mergeTwoRuns merges sorted runs a (older) and b (newer) into a fresh
// slice: concatenation when runs are disjoint ascending ranges, sorted
// duplicate-free union otherwise.
func mergeTwoRuns[T ~int32](a, b []T, needSort bool) []T {
	if !needSort {
		out := make([]T, 0, len(a)+len(b))
		out = append(out, a...)
		return append(out, b...)
	}
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
