package core

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry defaults.
const (
	// DefaultSessionTTL is how long an idle session survives before the
	// registry expires it.
	DefaultSessionTTL = 30 * time.Minute
	// DefaultSessionLimit caps live sessions per registry; creating past
	// the cap evicts the least recently used session.
	DefaultSessionLimit = 1024
)

// Registry names snapshots and manages mutation sessions over them — the
// multi-tenant layer `lipstick serve -dir` exposes. Snapshot names map to
// paths; loading and caching stays with the SnapshotManager underneath,
// so every session and read query against one snapshot shares a single
// loaded, indexed processor. Sessions are copy-on-write (see Session):
// per-session state costs O(changes), which is what lets one process hold
// thousands of concurrent what-if sessions over shared base graphs.
//
// The registry is safe for concurrent use.
type Registry struct {
	mgr        *SnapshotManager
	sessionTTL time.Duration
	maxSess    int
	now        func() time.Time // injectable for expiry tests

	mu       sync.Mutex
	snaps    map[string]string // name -> path
	sessions map[string]*Session
	seq      uint64
}

// RegistryOption configures a Registry.
type RegistryOption func(*Registry)

// WithSessionTTL sets the idle lifetime of sessions (<= 0 disables
// TTL-based expiry; the LRU cap still applies).
func WithSessionTTL(d time.Duration) RegistryOption {
	return func(r *Registry) { r.sessionTTL = d }
}

// WithSessionLimit caps concurrently live sessions (<= 0 selects
// DefaultSessionLimit).
func WithSessionLimit(n int) RegistryOption {
	return func(r *Registry) {
		if n > 0 {
			r.maxSess = n
		}
	}
}

// NewRegistry builds a registry over the given snapshot cache; a nil
// manager gets a private cache of default capacity.
func NewRegistry(mgr *SnapshotManager, opts ...RegistryOption) *Registry {
	if mgr == nil {
		mgr = NewSnapshotManager(0)
	}
	r := &Registry{
		mgr:        mgr,
		sessionTTL: DefaultSessionTTL,
		maxSess:    DefaultSessionLimit,
		now:        time.Now,
		snaps:      make(map[string]string),
		sessions:   make(map[string]*Session),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Manager exposes the underlying snapshot cache.
func (r *Registry) Manager() *SnapshotManager { return r.mgr }

// Register names a snapshot path. Re-registering a name with the same
// path is a no-op; a different path is an error (use a distinct name).
func (r *Registry) Register(name, path string) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("lipstick: invalid snapshot name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.snaps[name]; ok && prev != path {
		return fmt.Errorf("lipstick: snapshot name %q already registered for %s", name, prev)
	}
	r.snaps[name] = path
	return nil
}

// SnapshotName derives the registry name for a snapshot path: the file's
// base name without its .lpsk extension.
func SnapshotName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".lpsk")
}

// RegisterDir scans dir for *.lpsk files and registers each under its
// base name (without extension). It returns the sorted registered names.
func (r *Registry) RegisterDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lpsk") {
			continue
		}
		name := SnapshotName(e.Name())
		if err := r.Register(name, filepath.Join(dir, e.Name())); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SnapshotInfo describes one registered snapshot.
type SnapshotInfo struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

// Snapshots lists the registered snapshots sorted by name.
func (r *Registry) Snapshots() []SnapshotInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SnapshotInfo, 0, len(r.snaps))
	for name, path := range r.snaps {
		out = append(out, SnapshotInfo{Name: name, Path: path})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumSnapshots returns the number of registered snapshots.
func (r *Registry) NumSnapshots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.snaps)
}

// Single returns the lone registered snapshot when exactly one exists.
func (r *Registry) Single() (SnapshotInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.snaps) != 1 {
		return SnapshotInfo{}, false
	}
	for name, path := range r.snaps {
		return SnapshotInfo{Name: name, Path: path}, true
	}
	return SnapshotInfo{}, false // unreachable
}

// Lookup resolves a snapshot name to its path.
func (r *Registry) Lookup(name string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	path, ok := r.snaps[name]
	if !ok {
		return "", unknownSnapshot(name)
	}
	return path, nil
}

// Open returns the shared cached processor for a registered snapshot.
// Callers must stick to its read-only queries — mutations go through
// sessions.
func (r *Registry) Open(name string) (*QueryProcessor, error) {
	path, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return r.mgr.Open(path)
}

// CreateSession opens a copy-on-write mutation session over a registered
// snapshot. Expired sessions are swept first; if the registry is at its
// session cap the least recently used session is evicted.
func (r *Registry) CreateSession(snapshot string) (*Session, error) {
	base, err := r.Open(snapshot) // load outside the registry lock
	if err != nil {
		return nil, err
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	for len(r.sessions) >= r.maxSess {
		r.evictLRULocked()
	}
	r.seq++
	id := newSessionID(r.seq)
	s := newSession(id, snapshot, base, now)
	r.sessions[id] = s
	return s, nil
}

// newSessionID builds an id that is unguessable (random suffix — session
// ids are capability tokens over the HTTP API) and unique even across
// process restarts and random-source failure (the sequence prefix).
func newSessionID(seq uint64) string {
	var b [8]byte
	_, _ = rand.Read(b[:]) // a short read only weakens the random suffix
	return fmt.Sprintf("sess-%d-%s", seq, hex.EncodeToString(b[:]))
}

// Session resolves a session id, refreshing its TTL clock.
func (r *Registry) Session(id string) (*Session, error) {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return nil, unknownSession(id)
	}
	if s.expired(now, r.sessionTTL) {
		delete(r.sessions, id)
		return nil, unknownSession(id)
	}
	s.touch(now)
	return s, nil
}

// CloseSession discards a session and its overlay.
func (r *Registry) CloseSession(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[id]; !ok {
		return unknownSession(id)
	}
	delete(r.sessions, id)
	return nil
}

// Sessions returns the live (unexpired) sessions, most recent first.
func (r *Registry) Sessions() []*Session {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].lastUsed.Load() > out[j].lastUsed.Load()
	})
	return out
}

// NumSessions returns the number of live sessions.
func (r *Registry) NumSessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// ExpireSessions sweeps expired sessions now and returns how many were
// dropped.
func (r *Registry) ExpireSessions() int {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expireLocked(now)
}

func (r *Registry) expireLocked(now time.Time) int {
	n := 0
	for id, s := range r.sessions {
		if s.expired(now, r.sessionTTL) {
			delete(r.sessions, id)
			n++
		}
	}
	return n
}

func (r *Registry) evictLRULocked() {
	var oldest *Session
	for _, s := range r.sessions {
		if oldest == nil || s.lastUsed.Load() < oldest.lastUsed.Load() {
			oldest = s
		}
	}
	if oldest != nil {
		delete(r.sessions, oldest.id)
	}
}
