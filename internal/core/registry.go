package core

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry defaults.
const (
	// DefaultSessionTTL is how long an idle session survives before the
	// registry expires it.
	DefaultSessionTTL = 30 * time.Minute
	// DefaultSessionLimit caps live sessions per registry; creating past
	// the cap evicts the least recently used session.
	DefaultSessionLimit = 1024
)

// Registry names snapshots and manages mutation sessions over them — the
// multi-tenant layer `lipstick serve -dir` exposes. Snapshot names map to
// paths; loading and caching stays with the SnapshotManager underneath,
// so every session and read query against one snapshot shares a single
// loaded, indexed processor. Sessions are copy-on-write (see Session):
// per-session state costs O(changes), which is what lets one process hold
// thousands of concurrent what-if sessions over shared base graphs.
//
// The registry is safe for concurrent use.
type Registry struct {
	mgr        *SnapshotManager
	sessionTTL time.Duration
	maxSess    int
	now        func() time.Time // injectable for expiry tests
	liveDir    string           // WAL root for durable live graphs ("" = in-memory)
	liveOpts   []LiveOption

	mu    sync.Mutex
	snaps map[string]string     // name -> path; guarded by mu
	live  map[string]*LiveGraph // guarded by mu
	// liveOpening marks names whose durable live graph is mid-recovery
	// (opened outside the lock); liveOpened signals completion.
	liveOpening map[string]bool     // guarded by mu
	liveOpened  *sync.Cond          // on mu
	sessions    map[string]*Session // guarded by mu
	seq         uint64              // guarded by mu
}

// RegistryOption configures a Registry.
type RegistryOption func(*Registry)

// WithSessionTTL sets the idle lifetime of sessions (<= 0 disables
// TTL-based expiry; the LRU cap still applies).
func WithSessionTTL(d time.Duration) RegistryOption {
	return func(r *Registry) { r.sessionTTL = d }
}

// WithSessionLimit caps concurrently live sessions (<= 0 selects
// DefaultSessionLimit).
func WithSessionLimit(n int) RegistryOption {
	return func(r *Registry) {
		if n > 0 {
			r.maxSess = n
		}
	}
}

// WithLiveDir makes the registry's live graphs durable: each ingested
// stream gets a write-ahead log under dir/<name>/ (checkpoint + tail
// recovery via RestoreLiveDir). Without it live graphs are in-memory.
func WithLiveDir(dir string) RegistryOption {
	return func(r *Registry) { r.liveDir = dir }
}

// WithLiveOptions forwards options (checkpoint cadence, WAL tuning) to
// live graphs the registry opens.
func WithLiveOptions(opts ...LiveOption) RegistryOption {
	return func(r *Registry) { r.liveOpts = append(r.liveOpts, opts...) }
}

// NewRegistry builds a registry over the given snapshot cache; a nil
// manager gets a private cache of default capacity.
func NewRegistry(mgr *SnapshotManager, opts ...RegistryOption) *Registry {
	if mgr == nil {
		mgr = NewSnapshotManager(0)
	}
	r := &Registry{
		mgr:         mgr,
		sessionTTL:  DefaultSessionTTL,
		maxSess:     DefaultSessionLimit,
		now:         time.Now,
		snaps:       make(map[string]string),
		live:        make(map[string]*LiveGraph),
		liveOpening: make(map[string]bool),
		sessions:    make(map[string]*Session),
	}
	r.liveOpened = sync.NewCond(&r.mu)
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Manager exposes the underlying snapshot cache.
func (r *Registry) Manager() *SnapshotManager { return r.mgr }

// validSnapshotName rejects names that cannot address a registry entry
// (or, for durable live graphs, a directory).
func validSnapshotName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
		return &NameError{Name: name, Reason: "must be a single non-empty path segment"}
	}
	return nil
}

// Register names a snapshot path. Re-registering a name with the same
// path is a no-op; a different path is an error (use a distinct name).
func (r *Registry) Register(name, path string) error {
	if err := validSnapshotName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.live[name]; ok {
		return &NameError{Name: name, Reason: "already taken by a live graph"}
	}
	if r.liveOpening[name] {
		// A live graph of this name is mid-recovery outside the lock;
		// claiming the name now would let both kinds coexist.
		return &NameError{Name: name, Reason: "already being opened as a live graph"}
	}
	if prev, ok := r.snaps[name]; ok && prev != path {
		return &NameError{Name: name, Reason: fmt.Sprintf("already registered for %s", prev)}
	}
	r.snaps[name] = path
	return nil
}

// SnapshotName derives the registry name for a snapshot path: the file's
// base name without its .lpsk extension.
func SnapshotName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".lpsk")
}

// RegisterDir scans dir for *.lpsk files and registers each under its
// base name (without extension). It returns the sorted registered names.
func (r *Registry) RegisterDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lpsk") {
			continue
		}
		name := SnapshotName(e.Name())
		if err := r.Register(name, filepath.Join(dir, e.Name())); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SnapshotInfo describes one registered snapshot: a static .lpsk file
// (Kind "static") or a live graph under ingestion (Kind "live").
type SnapshotInfo struct {
	Name string `json:"name"`
	Path string `json:"path,omitempty"`
	Kind string `json:"kind"`
	// Events is the live graph's applied event count (live only).
	Events uint64 `json:"events,omitempty"`
	// Durable reports whether a live graph is WAL-backed (live only).
	Durable bool `json:"durable,omitempty"`
}

// Snapshots lists the registered snapshots — static and live — sorted by
// name.
func (r *Registry) Snapshots() []SnapshotInfo {
	r.mu.Lock()
	live := make([]*LiveGraph, 0, len(r.live))
	for _, lg := range r.live {
		live = append(live, lg)
	}
	out := make([]SnapshotInfo, 0, len(r.snaps)+len(live))
	for name, path := range r.snaps {
		out = append(out, SnapshotInfo{Name: name, Path: path, Kind: "static"})
	}
	r.mu.Unlock()
	for _, lg := range live { // Seq takes the graph's own lock; not under r.mu
		out = append(out, SnapshotInfo{
			Name: lg.Name(), Kind: "live", Events: lg.Seq(), Durable: lg.Durable(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumSnapshots returns the number of registered snapshots (static + live).
func (r *Registry) NumSnapshots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.snaps) + len(r.live)
}

// OpenLive returns the live graph registered under name, creating it on
// first use (durable under the registry's live directory, if configured).
// A name already taken by a static snapshot is rejected. Durable opens
// perform WAL recovery (checkpoint load + tail replay) outside the
// registry lock, so a long recovery never stalls unrelated registry
// traffic; concurrent opens of the same name coalesce into one recovery.
func (r *Registry) OpenLive(name string) (*LiveGraph, error) {
	if err := validSnapshotName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	for r.liveOpening[name] {
		r.liveOpened.Wait()
	}
	if lg, ok := r.live[name]; ok {
		r.mu.Unlock()
		return lg, nil
	}
	if _, ok := r.snaps[name]; ok {
		r.mu.Unlock()
		return nil, &NameError{Name: name, Reason: "already registered for a static snapshot"}
	}
	if r.liveDir == "" {
		lg := NewLiveGraph(name, r.liveOpts...)
		r.live[name] = lg
		r.mu.Unlock()
		return lg, nil
	}
	r.liveOpening[name] = true
	r.mu.Unlock()

	lg, err := OpenLiveGraph(name, filepath.Join(r.liveDir, name), r.liveOpts...)

	r.mu.Lock()
	delete(r.liveOpening, name)
	if err == nil {
		r.live[name] = lg
	}
	r.liveOpened.Broadcast()
	r.mu.Unlock()
	return lg, err
}

// LiveDir returns the registry's WAL root for durable live graphs ("" when
// live graphs are in-memory). Followers seed a stream's directory under it
// (checkpoint download) before OpenLive recovers the graph.
func (r *Registry) LiveDir() string { return r.liveDir }

// CloseLive removes a live graph from the registry and closes its log.
// The name becomes free to reopen — which is how a follower re-bootstraps
// after the primary compacted past its position: close, wipe the stream
// directory, re-seed from the newer checkpoint, OpenLive again.
func (r *Registry) CloseLive(name string) error {
	r.mu.Lock()
	for r.liveOpening[name] {
		r.liveOpened.Wait()
	}
	lg, ok := r.live[name]
	if !ok {
		r.mu.Unlock()
		return unknownSnapshot(name)
	}
	delete(r.live, name)
	r.mu.Unlock()
	return lg.Close()
}

// LiveGraph resolves an existing live graph by name.
func (r *Registry) LiveGraph(name string) (*LiveGraph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lg, ok := r.live[name]
	if !ok {
		return nil, unknownSnapshot(name)
	}
	return lg, nil
}

// LiveGraphs lists the live graphs sorted by name.
func (r *Registry) LiveGraphs() []*LiveGraph {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*LiveGraph, 0, len(r.live))
	for _, lg := range r.live {
		out = append(out, lg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// RestoreLiveDir reopens every live graph persisted under the registry's
// live directory (one subdirectory per stream), returning the sorted
// restored names. It is a no-op without a live directory.
func (r *Registry) RestoreLiveDir() ([]string, error) {
	if r.liveDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(r.liveDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := r.OpenLive(e.Name()); err != nil {
			return names, fmt.Errorf("lipstick: restoring live graph %q: %w", e.Name(), err)
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Single returns the lone registered static snapshot when exactly one
// exists.
func (r *Registry) Single() (SnapshotInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.snaps) != 1 {
		return SnapshotInfo{}, false
	}
	for name, path := range r.snaps {
		return SnapshotInfo{Name: name, Path: path, Kind: "static"}, true
	}
	return SnapshotInfo{}, false // unreachable
}

// SingleLive returns the lone live graph when exactly one exists and no
// static snapshot is registered (the default target of a pure-ingest
// server).
func (r *Registry) SingleLive() (*LiveGraph, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.snaps) != 0 || len(r.live) != 1 {
		return nil, false
	}
	for _, lg := range r.live {
		return lg, true
	}
	return nil, false // unreachable
}

// Lookup resolves a snapshot name to its path.
func (r *Registry) Lookup(name string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	path, ok := r.snaps[name]
	if !ok {
		return "", unknownSnapshot(name)
	}
	return path, nil
}

// Open returns the shared cached processor for a registered snapshot.
// Callers must stick to its read-only queries — mutations go through
// sessions.
func (r *Registry) Open(name string) (*QueryProcessor, error) {
	path, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return r.mgr.Open(path)
}

// CreateSession opens a copy-on-write mutation session over a registered
// snapshot. Expired sessions are swept first; if the registry is at its
// session cap the least recently used session is evicted.
func (r *Registry) CreateSession(snapshot string) (*Session, error) {
	if _, err := r.LiveGraph(snapshot); err == nil {
		// Overlays require an immutable base; a live graph mutates under
		// ingestion. Checkpointed snapshots of the stream are sessionable.
		return nil, &NameError{Name: snapshot, Reason: "is a live graph; sessions require a static snapshot"}
	}
	base, err := r.Open(snapshot) // load outside the registry lock
	if err != nil {
		return nil, err
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	for len(r.sessions) >= r.maxSess {
		r.evictLRULocked()
	}
	r.seq++
	id := newSessionID(r.seq)
	s := newSession(id, snapshot, base, now)
	r.sessions[id] = s
	statSessionsCreated.Add(1)
	return s, nil
}

// ForkSession clones a session's copy-on-write state into a fresh
// session over the same snapshot: the overlay's delta sets and the zoom
// stack are copied in O(changes) — the base graph is never copied — and
// the two sessions mutate independently from that point.
func (r *Registry) ForkSession(id string) (*Session, error) {
	parent, err := r.Session(id)
	if err != nil {
		return nil, err
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	for len(r.sessions) >= r.maxSess {
		r.evictLRULocked()
	}
	r.seq++
	child := parent.fork(newSessionID(r.seq), now)
	r.sessions[child.id] = child
	statSessionsCreated.Add(1)
	statSessionsForked.Add(1)
	return child, nil
}

// newSessionID builds an id that is unguessable (random suffix — session
// ids are capability tokens over the HTTP API) and unique even across
// process restarts and random-source failure (the sequence prefix).
func newSessionID(seq uint64) string {
	var b [8]byte
	_, _ = rand.Read(b[:]) // a short read only weakens the random suffix
	return fmt.Sprintf("sess-%d-%s", seq, hex.EncodeToString(b[:]))
}

// Session resolves a session id, refreshing its TTL clock.
func (r *Registry) Session(id string) (*Session, error) {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return nil, unknownSession(id)
	}
	if s.expired(now, r.sessionTTL) {
		delete(r.sessions, id)
		return nil, unknownSession(id)
	}
	s.touch(now)
	return s, nil
}

// CloseSession discards a session and its overlay.
func (r *Registry) CloseSession(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[id]; !ok {
		return unknownSession(id)
	}
	delete(r.sessions, id)
	return nil
}

// Sessions returns the live (unexpired) sessions, most recent first.
func (r *Registry) Sessions() []*Session {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].lastUsed.Load() > out[j].lastUsed.Load()
	})
	return out
}

// NumSessions returns the number of live sessions.
func (r *Registry) NumSessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// ExpireSessions sweeps expired sessions now and returns how many were
// dropped.
func (r *Registry) ExpireSessions() int {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expireLocked(now)
}

func (r *Registry) expireLocked(now time.Time) int {
	n := 0
	for id, s := range r.sessions {
		if s.expired(now, r.sessionTTL) {
			delete(r.sessions, id)
			n++
		}
	}
	statSessionsExpired.Add(int64(n))
	return n
}

func (r *Registry) evictLRULocked() {
	var oldest *Session
	for _, s := range r.sessions {
		if oldest == nil || s.lastUsed.Load() < oldest.lastUsed.Load() {
			oldest = s
		}
	}
	if oldest != nil {
		delete(r.sessions, oldest.id)
		statSessionsEvicted.Add(1)
	}
}

// Close shuts the registry down: every durable live graph is flushed and
// its write-ahead log closed, releasing the committer goroutine and file
// handles. The first close error is returned; the registry must not be
// used afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	live := make([]*LiveGraph, 0, len(r.live))
	for _, lg := range r.live {
		live = append(live, lg)
	}
	r.live = map[string]*LiveGraph{}
	r.sessions = map[string]*Session{}
	r.mu.Unlock()
	var first error
	for _, lg := range live {
		if err := lg.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
