package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/workflow"
	"lipstick/internal/workflowgen"
)

// Benchmarks for the indexed query path at the scale of the root
// benchmark suite (benchCars=1200, 10 executions — the workflowgen
// dealership workload). Recorded runs live in EXPERIMENTS.md.

const (
	benchCars  = 1200
	benchExecs = 10
)

var benchState struct {
	once sync.Once
	qp   *QueryProcessor
	err  error
}

// benchProcessor tracks the dealership workload once per `go test`
// process and shares the processor across benchmarks.
func benchProcessor(b *testing.B) *QueryProcessor {
	b.Helper()
	benchState.once.Do(func() {
		run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
			NumCars: benchCars, NumExec: benchExecs, Seed: 1,
			Gran: workflow.Fine, StopOnPurchase: false,
		})
		if err != nil {
			benchState.err = err
			return
		}
		benchState.qp = NewQueryProcessor(&store.Snapshot{Graph: run.Runner.Graph()})
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.qp
}

// benchFilters are the FindNodes shapes both series run: a label point
// lookup, an op selection, a type selection, and a module+type
// intersection.
var benchFilters = []struct {
	name string
	f    NodeFilter
}{
	{"label", NodeFilter{Label: "d1.car0"}}, // token point lookup
	{"op", NodeFilter{Ops: []provgraph.Op{provgraph.OpAgg}}},
	{"type", NodeFilter{Types: []provgraph.Type{provgraph.TypeWorkflowInput}}},
	{"module+type", NodeFilter{Module: "M_agg", Types: []provgraph.Type{provgraph.TypeModuleOutput}}},
}

// BenchmarkFindNodesIndexed measures postings-intersection FindNodes.
func BenchmarkFindNodesIndexed(b *testing.B) {
	qp := benchProcessor(b)
	for _, bf := range benchFilters {
		b.Run(bf.name, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				n = len(qp.FindNodes(bf.f))
			}
			b.ReportMetric(float64(n), "hits")
		})
	}
}

// BenchmarkFindNodesScan is the pre-index full-scan baseline over the
// same filters.
func BenchmarkFindNodesScan(b *testing.B) {
	qp := benchProcessor(b)
	for _, bf := range benchFilters {
		b.Run(bf.name, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				n = len(qp.findNodesScan(bf.f))
			}
			b.ReportMetric(float64(n), "hits")
		})
	}
}

// BenchmarkSnapshotOpen contrasts a cold load-per-query (the old CLI
// behavior: store.Load + graph build each time) against the
// SnapshotManager's cached processor.
func BenchmarkSnapshotOpen(b *testing.B) {
	qp := benchProcessor(b)
	path := filepath.Join(b.TempDir(), "bench.lpsk")
	if err := store.Save(path, &store.Snapshot{Graph: qp.Graph()}); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.SetBytes(fi.Size())
		for i := 0; i < b.N; i++ {
			if _, err := Load(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		m := NewSnapshotManager(2)
		b.SetBytes(fi.Size())
		for i := 0; i < b.N; i++ {
			if _, err := m.Open(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryLatency records the subgraph and lineage latency series
// against the same snapshot (cached-processor steady state).
func BenchmarkQueryLatency(b *testing.B) {
	qp := benchProcessor(b)
	targets := workflowgen.HighFanoutNodes(qp.Graph(), 50)
	if len(targets) == 0 {
		b.Fatal("no targets")
	}
	b.Run("subgraph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qp.Subgraph(targets[i%len(targets)])
		}
	})
	b.Run("lineage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qp.Lineage(targets[i%len(targets)])
		}
	})
}
