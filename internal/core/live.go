package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

// LiveGraph is a provenance graph under construction: an ordered event
// stream (provgraph.Event, numbered 1,2,3,...) is applied by a single
// writer while concurrent readers answer the full query surface through a
// QueryProcessor over the same graph. It is the serving-side half of
// streaming ingestion — `POST /v1/ingest/{name}` appends batches here —
// and turns the batch pipeline ("finish the workflow, write the snapshot,
// then query") into one where every query endpoint answers mid-run.
//
// Queries stay indexed while events stream in: the postings index grows
// incrementally with each applied node (appends arrive in id order, so
// the sorted-postings invariant holds for free), and FindNodes' post-index
// tail sweep covers whatever a reader races past.
//
// A LiveGraph can be durable: backed by a store.Log (write-ahead log), an
// acknowledged batch survives a process kill, and reopening the directory
// recovers checkpoint + WAL tail with no lost or duplicated events.
// Ingestion is idempotent by sequence number — re-sent batches overlap is
// skipped, gaps are rejected — which is what makes client retries safe.
type LiveGraph struct {
	name string

	// writeMu serializes the staging half of ingestion (validate, apply,
	// WAL submission order) plus Checkpoint and Close. In group-commit
	// mode the durability wait happens OUTSIDE writeMu (Wait on the
	// commit handle), so while one batch's fsync is in flight the next
	// batches decode, validate, apply, and enqueue — the pipeline that
	// lets one disk flush absorb many concurrent requests. WAL I/O never
	// runs under mu, so readers wait on memory mutation, not the disk.
	writeMu sync.Mutex
	// log and group are fixed at construction; the log synchronizes its
	// own I/O, so reading the pointer needs no lock.
	log   *store.Log // nil for in-memory live graphs
	group bool       // log runs in group-commit mode
	// pending holds events applied to the in-memory graph but not yet
	// durable in the log (a serial-mode WAL append failed). They are
	// retried before any new events are logged — and before a duplicate
	// retry batch is acknowledged — so the log's positional sequence
	// numbering never diverges from the stream's and an acknowledged
	// batch is durable. Group mode tracks the same obligation in
	// inflight below.
	pending   []provgraph.Event // guarded by writeMu
	ckptEvery uint64            // guarded by writeMu

	// sem is the admission gate: one token per in-flight batch between
	// AppendAsync and Wait. A full gate rejects with *OverloadedError
	// instead of queueing unboundedly. nil = unbounded.
	sem     chan struct{}
	queueHW atomic.Int64 // deepest the admission queue has been

	// inflight (group mode) lists batches applied to the in-memory graph
	// whose durability is not yet confirmed, in sequence order (entries
	// are added under writeMu at submission). After a failed group
	// commit the log rolls back and these are the events that must be
	// re-logged before any new ones.
	inflightMu sync.Mutex
	inflight   []pendingBatch // guarded by inflightMu

	// mu guards the queryable state below for concurrent readers; the
	// writer holds it only while applying events to memory. Writes happen
	// with BOTH writeMu and mu held, so a reader may hold either one —
	// hence the two-guard annotations.
	mu       sync.RWMutex
	g        *provgraph.Graph // guarded by mu or writeMu
	ix       *liveIndex       // guarded by mu or writeMu
	qp       *QueryProcessor  // guarded by mu or writeMu
	seq      uint64           // last applied event sequence; guarded by mu or writeMu
	lastCkpt uint64           // guarded by mu or writeMu
	sincePub uint64           // events applied since the last publish; guarded by mu or writeMu

	// view is the newest published read view. Store is the release half of
	// the epoch-publish protocol: everything the view's graph and postings
	// reference was written before the Store, and published structures are
	// never overwritten afterwards, so a Load-ing reader needs no lock.
	view atomic.Pointer[LiveView]
	// appliedSeq mirrors seq for the lock-free staleness check in
	// ReadView (it is stored after each apply batch, inside mu).
	appliedSeq atomic.Uint64

	pubEvery uint64        // republish after this many applied events (0 = only on demand)
	pubStale time.Duration // max view staleness ReadView tolerates (0 = read-your-writes)
}

// LiveView is one published, immutable snapshot of a live graph: a query
// processor over an epoch-published graph view and postings snapshot.
// Any number of goroutines may query it concurrently without locks, and
// it stays valid (frozen at its sequence) for as long as it is retained.
type LiveView struct {
	// Seq is the last event sequence the view includes.
	Seq uint64 // published via view
	// QP answers the full query surface over the frozen view.
	QP *QueryProcessor // published via view
	// At is when the view was published (staleness accounting).
	At time.Time // published via view
}

// pendingBatch is one applied-but-not-yet-durable span of the stream.
type pendingBatch struct {
	firstSeq uint64
	events   []provgraph.Event
}

// DefaultCheckpointEvery is how many events a durable live graph ingests
// between automatic checkpoints.
const DefaultCheckpointEvery = 1 << 16

// DefaultIngestQueueDepth is how many batches may sit between admission
// and durability before new ones are shed with *OverloadedError.
const DefaultIngestQueueDepth = 64

// DefaultPublishEvery is how many applied events trigger an automatic
// view republish during ingest.
const DefaultPublishEvery = 4096

// liveConfig collects LiveOption state.
type liveConfig struct {
	ckptEvery  uint64
	logOpts    []store.LogOption
	queueDepth int
	pubEvery   uint64
	pubStale   time.Duration
}

// LiveOption configures a durable live graph.
type LiveOption func(*liveConfig)

// WithCheckpointEvery sets the automatic checkpoint interval in events
// (0 disables automatic checkpoints; Checkpoint can still be called).
func WithCheckpointEvery(n uint64) LiveOption {
	return func(c *liveConfig) { c.ckptEvery = n }
}

// WithLogOptions forwards options to the underlying write-ahead log
// (segment size, fsync policy, group commit).
func WithLogOptions(opts ...store.LogOption) LiveOption {
	return func(c *liveConfig) { c.logOpts = append(c.logOpts, opts...) }
}

// WithIngestQueueDepth bounds the batches in flight between admission
// and durability: past the bound, Append rejects with *OverloadedError
// (HTTP 429) instead of growing memory without bound. 0 selects
// DefaultIngestQueueDepth; negative disables admission control.
func WithIngestQueueDepth(n int) LiveOption {
	return func(c *liveConfig) { c.queueDepth = n }
}

// WithPublishEvery sets how many applied events trigger an automatic
// view republish on the ingest path (default DefaultPublishEvery;
// n <= 0 disables event-count republish — views then refresh only when
// a reader finds its view too stale).
func WithPublishEvery(n int) LiveOption {
	return func(c *liveConfig) {
		if n <= 0 {
			c.pubEvery = 0
		} else {
			c.pubEvery = uint64(n)
		}
	}
}

// WithPublishMaxStale bounds how far behind the applied stream a view
// ReadView hands out may be. 0 (the default) means read-your-writes:
// any staleness forces a republish before the read proceeds. A serving
// deployment typically tolerates a few tens of milliseconds so that
// republish cost amortizes over many requests.
func WithPublishMaxStale(d time.Duration) LiveOption {
	return func(c *liveConfig) { c.pubStale = d }
}

// admissionGate builds the semaphore for a configured depth.
func admissionGate(depth int) chan struct{} {
	if depth == 0 {
		depth = DefaultIngestQueueDepth
	}
	if depth < 0 {
		return nil
	}
	return make(chan struct{}, depth)
}

// NewLiveGraph returns an empty in-memory live graph (no durability).
// Log-related options are ignored; the ingest queue depth applies.
func NewLiveGraph(name string, opts ...LiveOption) *LiveGraph {
	cfg := liveConfig{pubEvery: DefaultPublishEvery}
	for _, opt := range opts {
		opt(&cfg)
	}
	l := &LiveGraph{
		name: name, g: provgraph.New(), sem: admissionGate(cfg.queueDepth),
		pubEvery: cfg.pubEvery, pubStale: cfg.pubStale,
	}
	l.g.PrepareForIngest()
	l.ix = newLiveIndex(l.g, nil)
	l.qp = &QueryProcessor{graph: l.g, index: &Index{data: l.ix}, zoomed: map[string]bool{}}
	l.mu.Lock()
	l.publishLocked()
	l.mu.Unlock()
	return l
}

// OpenLiveGraph opens (creating if needed) a durable live graph backed by
// a write-ahead log directory, recovering checkpoint + tail state.
func OpenLiveGraph(name, dir string, opts ...LiveOption) (*LiveGraph, error) {
	cfg := liveConfig{ckptEvery: DefaultCheckpointEvery, pubEvery: DefaultPublishEvery}
	for _, opt := range opts {
		opt(&cfg)
	}
	log, rec, err := store.OpenLog(dir, cfg.logOpts...)
	if err != nil {
		return nil, err
	}
	l := &LiveGraph{
		name: name, log: log, group: log.GroupCommit(),
		ckptEvery: cfg.ckptEvery, sem: admissionGate(cfg.queueDepth),
		pubEvery: cfg.pubEvery, pubStale: cfg.pubStale,
	}
	var base store.Postings
	if rec.Snapshot != nil {
		l.g = rec.Snapshot.Graph
		switch {
		case rec.Snapshot.Postings != nil:
			base = rec.Snapshot.Postings
		case rec.Snapshot.Index != nil:
			base = rec.Snapshot.Index
		default:
			base = store.BuildIndex(l.g)
		}
	} else {
		l.g = provgraph.New()
	}
	l.g.PrepareForIngest()
	l.ix = newLiveIndex(l.g, base)
	l.qp = &QueryProcessor{graph: l.g, index: &Index{data: l.ix}, zoomed: map[string]bool{}}
	l.seq = rec.CheckpointSeq
	l.lastCkpt = rec.CheckpointSeq
	for i := range rec.Tail {
		if err := l.applyLocked(rec.Tail[i]); err != nil {
			log.Close()
			return nil, fmt.Errorf("lipstick: replaying wal event %d of %s: %w", l.seq+1, name, err)
		}
		l.seq++
	}
	l.mu.Lock()
	l.publishLocked()
	l.mu.Unlock()
	return l, nil
}

// Name returns the registry name of the live graph.
func (l *LiveGraph) Name() string { return l.name }

// Seq returns the sequence number of the last applied event.
func (l *LiveGraph) Seq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.seq
}

// Durable reports whether the live graph is WAL-backed.
func (l *LiveGraph) Durable() bool { return l.log != nil }

// SeqGapError reports an ingest batch that starts past the live graph's
// next expected sequence — events in between were never received.
type SeqGapError struct {
	Name     string
	Expected uint64
	Got      uint64
}

// Error implements error.
func (e *SeqGapError) Error() string {
	return fmt.Sprintf("lipstick: ingest gap on %q: expected sequence %d, batch starts at %d", e.Name, e.Expected, e.Got)
}

// IngestStatus reports the outcome of one Append.
type IngestStatus struct {
	// Seq is the live graph's last applied sequence after the batch.
	Seq uint64
	// Applied counts the events the batch actually added.
	Applied int
	// Duplicates counts re-sent events skipped by sequence overlap.
	Duplicates int
}

// Append ingests a batch whose first event carries sequence firstSeq.
// Batches must arrive in order: overlap with already-applied sequences is
// skipped (idempotent retries), a gap is rejected with *SeqGapError, and
// a full admission queue with *OverloadedError. For durable graphs the
// applied suffix is WAL-logged (and fsynced, per the log's policy) before
// Append returns; only the in-memory application holds the read lock, so
// concurrent queries never wait on the disk.
func (l *LiveGraph) Append(firstSeq uint64, events []provgraph.Event) (IngestStatus, error) {
	return l.AppendAsync(firstSeq, events).Wait()
}

// PendingAppend is a staged ingest batch: admitted, validated, applied to
// the in-memory graph, and (durable graphs) enqueued for group commit.
// Wait must be called exactly once; until then the batch holds its
// admission slot.
type PendingAppend struct {
	l        *LiveGraph
	st       IngestStatus
	err      error // admission/validation/durability error
	applyErr error
	commit   *store.Commit
	slot     bool
}

// AppendAsync runs the ingest pipeline's staging half — admission,
// sequence validation (dup-skip / gap), in-memory application, and WAL
// submission — and returns without waiting for durability. WAL record
// encoding happens before any lock is taken, and the fsync wait happens
// in Wait, outside writeMu: while one batch's flush is in flight the
// next requests stage and enqueue, so one group commit absorbs them all.
// For in-memory and serial-WAL graphs the returned handle is already
// resolved (those paths stay synchronous).
func (l *LiveGraph) AppendAsync(firstSeq uint64, events []provgraph.Event) *PendingAppend {
	p := &PendingAppend{l: l}
	// Admission: shed load instead of queueing without bound.
	if l.sem != nil {
		select {
		case l.sem <- struct{}{}:
			p.slot = true
			// CAS max: a concurrent lower observation must not overwrite a
			// higher watermark.
			for hw := int64(len(l.sem)); ; {
				cur := l.queueHW.Load()
				if hw <= cur || l.queueHW.CompareAndSwap(cur, hw) {
					break
				}
			}
		default:
			statIngestOverloads.Add(1)
			p.st.Seq = l.Seq()
			p.err = &OverloadedError{Name: l.name, Depth: cap(l.sem)}
			return p
		}
	}
	// Encode WAL records outside every lock (group mode): concurrent
	// requests encode in parallel with each other and with the committer.
	var recs *store.Records
	if l.group {
		r, err := store.EncodeRecords(events)
		if err != nil {
			p.err = err
			return p
		}
		recs = r
	}
	l.writeMu.Lock()
	// Re-log anything a failed commit left undurable before accepting new
	// events, so WAL positions stay aligned with stream sequences.
	if err := l.flushBacklogLocked(); err != nil {
		l.writeMu.Unlock()
		if recs != nil {
			recs.Recycle()
		}
		p.st.Seq, p.err = l.Seq(), err
		return p
	}
	// seq only changes under writeMu, so this read needs no mu.
	expected := l.seq + 1
	if firstSeq > expected {
		seq := l.seq
		l.writeMu.Unlock()
		if recs != nil {
			recs.Recycle()
		}
		p.st.Seq = seq
		p.err = &SeqGapError{Name: l.name, Expected: expected, Got: firstSeq}
		return p
	}
	skip := int(expected - firstSeq)
	if skip >= len(events) {
		// A fully duplicate batch is a retry of events that may not be
		// durable yet; the acknowledgement promises durability, so earn
		// it — serial mode flushed pending above, group mode orders a
		// barrier behind every queued commit.
		p.st = IngestStatus{Seq: l.seq, Duplicates: len(events)}
		if l.group && l.log != nil {
			if c, err := l.log.Barrier(); err != nil {
				p.err = err
			} else {
				p.commit = c
			}
		}
		l.writeMu.Unlock()
		if recs != nil {
			recs.Recycle()
		}
		return p
	}
	fresh := events[skip:]
	if recs != nil {
		recs.Skip(skip)
	}
	applied := 0
	l.mu.Lock()
	for i := range fresh {
		if err := l.applyLocked(fresh[i]); err != nil {
			p.applyErr = fmt.Errorf("lipstick: ingest event %d of %s: %w", l.seq+uint64(applied)+1, l.name, err)
			break
		}
		applied++
	}
	l.seq += uint64(applied)
	l.sincePub += uint64(applied)
	// Republish inside the same exclusive window that applied the events:
	// the ingest path pays the (cheap, O(1)-amortized) publish so steady
	// reads stay entirely lock-free.
	if l.pubEvery > 0 && l.sincePub >= l.pubEvery {
		l.publishLocked()
	}
	l.appliedSeq.Store(l.seq)
	l.mu.Unlock()
	// Counters track applied events; they must move even when the WAL
	// write below fails, or a dup-skipped retry would leave them behind
	// the stream position forever.
	statIngestBatches.Add(1)
	statIngestEvents.Add(int64(applied))
	p.st = IngestStatus{Seq: l.seq, Applied: applied, Duplicates: skip}
	if l.log != nil && applied > 0 {
		if l.group {
			recs.Truncate(applied)
			l.inflightMu.Lock()
			l.inflight = append(l.inflight, pendingBatch{firstSeq: expected, events: fresh[:applied]})
			l.inflightMu.Unlock()
			c, err := l.log.AppendRecords(recs)
			recs = nil // ownership transferred (recycled by the log)
			if err != nil {
				// Submission refused (failed/closed log): the events stay
				// in inflight for the next flush; surface the failure.
				p.err = err
			} else {
				p.commit = c
			}
		} else {
			l.pending = append(l.pending, fresh[:applied]...)
			if err := l.drainPendingLocked(); err != nil {
				p.err = err
			}
		}
	}
	if p.err == nil && p.applyErr == nil &&
		l.log != nil && l.ckptEvery > 0 && l.seq-l.lastCkpt >= l.ckptEvery {
		// The checkpoint op queues behind this batch's commit, so it
		// covers exactly the events applied so far; writeMu is held
		// throughout, keeping the graph stable for serialization.
		if err := l.checkpointLocked(); err != nil {
			p.err = err
		}
	}
	l.writeMu.Unlock()
	if recs != nil {
		recs.Recycle()
	}
	return p
}

// Wait blocks until the staged batch is durable (write + fsync per the
// log's policy) and returns the ingest outcome, releasing the admission
// slot. Durability failures take precedence over mid-batch apply errors,
// matching the synchronous Append contract.
func (p *PendingAppend) Wait() (IngestStatus, error) {
	if p.commit != nil {
		werr := p.commit.Wait()
		p.commit = nil
		if werr == nil {
			p.l.pruneInflight()
		} else if p.err == nil {
			p.err = fmt.Errorf("lipstick: logging ingest batch of %s: %w", p.l.name, werr)
		}
	}
	if p.slot {
		p.slot = false
		<-p.l.sem
	}
	if p.err != nil {
		return p.st, p.err
	}
	return p.st, p.applyErr
}

// pruneInflight drops inflight entries the log has made durable.
func (l *LiveGraph) pruneInflight() {
	durable := l.log.LastSeq()
	l.inflightMu.Lock()
	i := 0
	for i < len(l.inflight) {
		b := l.inflight[i]
		if b.firstSeq+uint64(len(b.events))-1 > durable {
			break
		}
		i++
	}
	l.inflight = l.inflight[i:]
	l.inflightMu.Unlock()
}

// drainPendingLocked (writeMu held, serial mode) writes the applied-but-
// unlogged events to the WAL. store.Log.Append is all-or-nothing (a
// failed append rolls the log back to its pre-batch state), so pending
// either drains completely or stays queued for the next attempt —
// positions in the log and stream sequences stay aligned across failures.
func (l *LiveGraph) drainPendingLocked() error {
	if l.log == nil || len(l.pending) == 0 {
		return nil
	}
	if err := l.log.Append(l.pending); err != nil {
		return err
	}
	l.pending = nil
	return nil
}

// flushBacklogLocked (writeMu held) restores the durable log to the
// stream's position: serial mode drains pending; group mode, after a
// failed group commit rolled the log back, re-logs the inflight suffix
// (inserted in order at submission, so the backlog is always contiguous)
// and clears the log's sticky failure.
func (l *LiveGraph) flushBacklogLocked() error {
	if l.log == nil {
		return nil
	}
	if !l.group {
		return l.drainPendingLocked()
	}
	ferr := l.log.Failed()
	if ferr == nil {
		return nil
	}
	durable := l.log.LastSeq()
	need := durable + 1
	var events []provgraph.Event
	l.inflightMu.Lock()
	for _, b := range l.inflight {
		last := b.firstSeq + uint64(len(b.events)) - 1
		if last < need {
			continue // already durable before the failure
		}
		if b.firstSeq > need {
			l.inflightMu.Unlock()
			return fmt.Errorf("lipstick: durability backlog of %s has a hole at sequence %d: %w", l.name, need, ferr)
		}
		events = append(events, b.events[need-b.firstSeq:]...)
		need = last + 1
	}
	l.inflightMu.Unlock()
	l.log.ResetFailed()
	if len(events) == 0 {
		return nil
	}
	recs, err := store.EncodeRecords(events)
	if err != nil {
		return err
	}
	c, err := l.log.AppendRecords(recs)
	if err != nil {
		return err
	}
	if err := c.Wait(); err != nil {
		return fmt.Errorf("lipstick: re-logging %d events of %s: %w", len(events), l.name, err)
	}
	l.pruneInflight()
	return nil
}

// applyLocked applies one event to the graph and grows the postings index
// in step, so index-backed selection stays exact mid-ingest.
func (l *LiveGraph) applyLocked(ev provgraph.Event) error {
	if err := provgraph.Apply(l.g, ev); err != nil {
		return err
	}
	switch ev.Kind {
	case provgraph.EvAddNode:
		n := ev.Node
		module := ""
		if n.Inv >= 0 {
			module = l.g.Invocation(n.Inv).Module
		}
		l.ix.addNode(n, module)
	case provgraph.EvOpenInvocation:
		l.ix.addInvocation(ev.Module, ev.Inv)
	case provgraph.EvSetNodeInv:
		// The m-node joins its module's postings once the back-reference
		// lands (it was created before its invocation record existed).
		l.ix.setNodeModule(l.g.Invocation(ev.Inv).Module, ev.Src)
	}
	return nil
}

// Read runs fn against the live graph's query processor under a read
// lock: every read the processor supports (FindNodes, Subgraph, Lineage,
// WhatIfDelete, Expr, exports, stats) is consistent with a fixed event
// prefix, while ingestion continues the moment fn returns. Results must
// be materialized inside fn, not aliased past it.
func (l *LiveGraph) Read(fn func(*QueryProcessor) error) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return fn(l.qp)
}

// publishLocked (mu held exclusively) publishes a fresh immutable view:
// an epoch-published graph view, a sealed postings snapshot, and a query
// processor over both, stamped with the applied sequence. The atomic
// Store is the release edge readers pair their Load with.
func (l *LiveGraph) publishLocked() {
	vg := l.g.PublishView()
	qp := &QueryProcessor{graph: vg, index: &Index{data: l.ix.publish()}, zoomed: map[string]bool{}}
	l.view.Store(&LiveView{Seq: l.seq, QP: qp, At: time.Now()})
	l.sincePub = 0
}

// ReadView returns a published view to query without any locking. The
// fast path is two atomic loads: when the newest view already covers the
// applied stream (or is within the configured staleness bound), readers
// share it and never touch a mutex — mid-ingest reads scale with cores
// instead of serializing against the writer. Otherwise ReadView takes
// the write lock once, republishes, and the view it returns is exact.
func (l *LiveGraph) ReadView() *LiveView {
	if v := l.view.Load(); v != nil {
		if v.Seq == l.appliedSeq.Load() {
			return v
		}
		if l.pubStale > 0 && time.Since(v.At) <= l.pubStale {
			return v
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if v := l.view.Load(); v != nil && v.Seq == l.seq {
		return v
	}
	l.publishLocked()
	return l.view.Load()
}

// Checkpoint compacts the durable log: the current graph is written as a
// standard LPSK v2 snapshot and the WAL prefix it covers is deleted. It
// is a no-op for in-memory live graphs.
func (l *LiveGraph) Checkpoint() error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if l.log == nil {
		return nil
	}
	return l.checkpointLocked()
}

// checkpointLocked (writeMu held) snapshots and compacts. No writer can be
// applying events, so the graph is stable for serialization; concurrent
// readers share it harmlessly.
func (l *LiveGraph) checkpointLocked() error {
	// The checkpoint is named by the log's own sequence; events the log
	// has not absorbed yet must land there first or the snapshot would
	// contain events past the recorded checkpoint sequence. (In group
	// mode healthy queued commits need no flush — the checkpoint op
	// queues behind them and covers them.)
	if err := l.flushBacklogLocked(); err != nil {
		return fmt.Errorf("lipstick: checkpoint of %s: flushing unlogged events: %w", l.name, err)
	}
	// Serialize from a freshly published view: the view's graph is
	// immutable and shares the columns' frozen tails, so readers keep
	// answering (and the snapshot is exactly the applied prefix) while
	// the checkpoint encodes.
	l.mu.Lock()
	l.publishLocked()
	v := l.view.Load()
	l.mu.Unlock()
	if err := l.log.Checkpoint(&store.Snapshot{Graph: v.QP.graph}); err != nil {
		return err
	}
	l.mu.Lock()
	l.lastCkpt = l.log.CheckpointSeq()
	l.mu.Unlock()
	return nil
}

// CheckpointSeq returns the sequence covered by the newest checkpoint
// (0 for in-memory graphs or before the first checkpoint).
func (l *LiveGraph) CheckpointSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastCkpt
}

// Close flushes and closes the backing log (in-memory graphs: no-op).
func (l *LiveGraph) Close() error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if l.log == nil {
		return nil
	}
	if err := l.flushBacklogLocked(); err != nil {
		l.log.Close()
		return err
	}
	return l.log.Close()
}

// PipelineStats are the ingest pipeline's operational counters: how many
// coalesced group commits the WAL performed, how many batches they
// absorbed (Batches/Commits is the fsync amortization factor), the
// admission queue's configured depth, and the deepest it has been.
type PipelineStats struct {
	GroupCommits   int64 `json:"groupCommits"`
	GroupBatches   int64 `json:"groupBatches"`
	QueueDepth     int   `json:"queueDepth"`
	QueueHighWater int64 `json:"queueHighWater"`
}

// PipelineStats snapshots the graph's ingest pipeline counters.
func (l *LiveGraph) PipelineStats() PipelineStats {
	ps := PipelineStats{QueueHighWater: l.queueHW.Load()}
	if l.sem != nil {
		ps.QueueDepth = cap(l.sem)
	}
	if l.log != nil {
		gs := l.log.GroupStats()
		ps.GroupCommits, ps.GroupBatches = gs.Commits, gs.Batches
	}
	return ps
}

// LiveInfo summarizes a live graph for listings and metrics.
type LiveInfo struct {
	Name          string `json:"name"`
	Events        uint64 `json:"events"`
	Nodes         int    `json:"nodes"`
	Invocations   int    `json:"invocations"`
	Durable       bool   `json:"durable"`
	CheckpointSeq uint64 `json:"checkpointSeq"`
}

// Info snapshots the live graph's vital statistics.
func (l *LiveGraph) Info() LiveInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return LiveInfo{
		Name:          l.name,
		Events:        l.seq,
		Nodes:         l.g.NumNodes(),
		Invocations:   l.g.NumInvocations(),
		Durable:       l.log != nil,
		CheckpointSeq: l.lastCkpt,
	}
}
