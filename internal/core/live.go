package core

import (
	"fmt"
	"sync"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

// LiveGraph is a provenance graph under construction: an ordered event
// stream (provgraph.Event, numbered 1,2,3,...) is applied by a single
// writer while concurrent readers answer the full query surface through a
// QueryProcessor over the same graph. It is the serving-side half of
// streaming ingestion — `POST /v1/ingest/{name}` appends batches here —
// and turns the batch pipeline ("finish the workflow, write the snapshot,
// then query") into one where every query endpoint answers mid-run.
//
// Queries stay indexed while events stream in: the postings index grows
// incrementally with each applied node (appends arrive in id order, so
// the sorted-postings invariant holds for free), and FindNodes' post-index
// tail sweep covers whatever a reader races past.
//
// A LiveGraph can be durable: backed by a store.Log (write-ahead log), an
// acknowledged batch survives a process kill, and reopening the directory
// recovers checkpoint + WAL tail with no lost or duplicated events.
// Ingestion is idempotent by sequence number — re-sent batches overlap is
// skipped, gaps are rejected — which is what makes client retries safe.
type LiveGraph struct {
	name string

	// writeMu serializes writers (Append, Checkpoint, Close). WAL I/O —
	// including the per-batch fsync — happens under writeMu only, never
	// under mu, so readers wait on memory mutation, not on the disk.
	writeMu sync.Mutex
	// log, pending, ckptEvery are writer-only state (guarded by writeMu).
	log *store.Log // nil for in-memory live graphs
	// pending holds events applied to the in-memory graph but not yet
	// durable in the log (a WAL append failed). They are retried before
	// any new events are logged — and before a duplicate retry batch is
	// acknowledged — so the log's positional sequence numbering never
	// diverges from the stream's and an acknowledged batch is durable.
	pending   []provgraph.Event
	ckptEvery uint64

	// mu guards the queryable state below for concurrent readers; the
	// writer holds it only while applying events to memory.
	mu       sync.RWMutex
	g        *provgraph.Graph
	ix       *store.Index
	qp       *QueryProcessor
	seq      uint64 // last applied event sequence
	lastCkpt uint64
}

// DefaultCheckpointEvery is how many events a durable live graph ingests
// between automatic checkpoints.
const DefaultCheckpointEvery = 1 << 16

// liveConfig collects LiveOption state.
type liveConfig struct {
	ckptEvery uint64
	logOpts   []store.LogOption
}

// LiveOption configures a durable live graph.
type LiveOption func(*liveConfig)

// WithCheckpointEvery sets the automatic checkpoint interval in events
// (0 disables automatic checkpoints; Checkpoint can still be called).
func WithCheckpointEvery(n uint64) LiveOption {
	return func(c *liveConfig) { c.ckptEvery = n }
}

// WithLogOptions forwards options to the underlying write-ahead log
// (segment size, fsync policy).
func WithLogOptions(opts ...store.LogOption) LiveOption {
	return func(c *liveConfig) { c.logOpts = append(c.logOpts, opts...) }
}

// NewLiveGraph returns an empty in-memory live graph (no durability).
func NewLiveGraph(name string) *LiveGraph {
	l := &LiveGraph{name: name, g: provgraph.New()}
	l.ix = store.BuildIndex(l.g)
	l.qp = &QueryProcessor{graph: l.g, index: &Index{data: l.ix}, zoomed: map[string]bool{}}
	return l
}

// OpenLiveGraph opens (creating if needed) a durable live graph backed by
// a write-ahead log directory, recovering checkpoint + tail state.
func OpenLiveGraph(name, dir string, opts ...LiveOption) (*LiveGraph, error) {
	cfg := liveConfig{ckptEvery: DefaultCheckpointEvery}
	for _, opt := range opts {
		opt(&cfg)
	}
	log, rec, err := store.OpenLog(dir, cfg.logOpts...)
	if err != nil {
		return nil, err
	}
	l := &LiveGraph{name: name, log: log, ckptEvery: cfg.ckptEvery}
	if rec.Snapshot != nil {
		l.g = rec.Snapshot.Graph
		l.ix = rec.Snapshot.Index
		if l.ix == nil {
			l.ix = store.BuildIndex(l.g)
		}
	} else {
		l.g = provgraph.New()
		l.ix = store.BuildIndex(l.g)
	}
	l.qp = &QueryProcessor{graph: l.g, index: &Index{data: l.ix}, zoomed: map[string]bool{}}
	l.seq = rec.CheckpointSeq
	l.lastCkpt = rec.CheckpointSeq
	for i := range rec.Tail {
		if err := l.applyLocked(rec.Tail[i]); err != nil {
			log.Close()
			return nil, fmt.Errorf("lipstick: replaying wal event %d of %s: %w", l.seq+1, name, err)
		}
		l.seq++
	}
	return l, nil
}

// Name returns the registry name of the live graph.
func (l *LiveGraph) Name() string { return l.name }

// Seq returns the sequence number of the last applied event.
func (l *LiveGraph) Seq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.seq
}

// Durable reports whether the live graph is WAL-backed.
func (l *LiveGraph) Durable() bool { return l.log != nil }

// SeqGapError reports an ingest batch that starts past the live graph's
// next expected sequence — events in between were never received.
type SeqGapError struct {
	Name     string
	Expected uint64
	Got      uint64
}

// Error implements error.
func (e *SeqGapError) Error() string {
	return fmt.Sprintf("lipstick: ingest gap on %q: expected sequence %d, batch starts at %d", e.Name, e.Expected, e.Got)
}

// IngestStatus reports the outcome of one Append.
type IngestStatus struct {
	// Seq is the live graph's last applied sequence after the batch.
	Seq uint64
	// Applied counts the events the batch actually added.
	Applied int
	// Duplicates counts re-sent events skipped by sequence overlap.
	Duplicates int
}

// Append ingests a batch whose first event carries sequence firstSeq.
// Batches must arrive in order: overlap with already-applied sequences is
// skipped (idempotent retries), a gap is rejected with *SeqGapError. For
// durable graphs the applied suffix is WAL-logged (and fsynced, per the
// log's policy) before Append returns; only the in-memory application
// holds the read lock, so concurrent queries never wait on the disk.
func (l *LiveGraph) Append(firstSeq uint64, events []provgraph.Event) (IngestStatus, error) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	// seq only changes under writeMu, so this read needs no mu.
	expected := l.seq + 1
	if firstSeq > expected {
		return IngestStatus{Seq: l.seq}, &SeqGapError{Name: l.name, Expected: expected, Got: firstSeq}
	}
	skip := int(expected - firstSeq)
	if skip >= len(events) {
		// A fully duplicate batch is a retry of events we may not have
		// made durable yet (a prior WAL failure leaves them in pending);
		// the acknowledgement below promises durability, so earn it.
		if err := l.flushPending(); err != nil {
			return IngestStatus{Seq: l.seq, Duplicates: len(events)}, err
		}
		return IngestStatus{Seq: l.seq, Duplicates: len(events)}, nil
	}
	fresh := events[skip:]
	applied := 0
	var applyErr error
	l.mu.Lock()
	for i := range fresh {
		if applyErr = l.applyLocked(fresh[i]); applyErr != nil {
			applyErr = fmt.Errorf("lipstick: ingest event %d of %s: %w", l.seq+uint64(applied)+1, l.name, applyErr)
			break
		}
		applied++
	}
	l.seq += uint64(applied)
	l.mu.Unlock()
	// Counters track applied events; they must move even when the WAL
	// write below fails, or a dup-skipped retry would leave them behind
	// the stream position forever.
	statIngestBatches.Add(1)
	statIngestEvents.Add(int64(applied))
	if applied > 0 && l.log != nil {
		l.pending = append(l.pending, fresh[:applied]...)
	}
	if err := l.flushPending(); err != nil {
		// The in-memory graph is ahead of the log; the unlogged suffix
		// stays in pending and is retried before any later events are
		// logged. Surface the durability failure to the sender.
		return IngestStatus{Seq: l.seq, Applied: applied, Duplicates: skip}, err
	}
	st := IngestStatus{Seq: l.seq, Applied: applied, Duplicates: skip}
	if applyErr != nil {
		return st, applyErr
	}
	if l.log != nil && l.ckptEvery > 0 && l.seq-l.lastCkpt >= l.ckptEvery {
		if err := l.checkpointHeld(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// flushPending (writeMu held) writes the applied-but-unlogged events to
// the WAL. store.Log.Append is all-or-nothing (a failed append rolls the
// log back to its pre-batch state), so pending either drains completely
// or stays queued for the next attempt — positions in the log and stream
// sequences stay aligned across failures.
func (l *LiveGraph) flushPending() error {
	if l.log == nil || len(l.pending) == 0 {
		return nil
	}
	if err := l.log.Append(l.pending); err != nil {
		return err
	}
	l.pending = nil
	return nil
}

// applyLocked applies one event to the graph and grows the postings index
// in step, so index-backed selection stays exact mid-ingest.
func (l *LiveGraph) applyLocked(ev provgraph.Event) error {
	if err := provgraph.Apply(l.g, ev); err != nil {
		return err
	}
	switch ev.Kind {
	case provgraph.EvAddNode:
		n := ev.Node
		l.ix.Nodes++
		l.ix.ByType[n.Type] = append(l.ix.ByType[n.Type], n.ID)
		l.ix.ByOp[n.Op] = append(l.ix.ByOp[n.Op], n.ID)
		if n.Label != "" {
			l.ix.ByLabel[n.Label] = append(l.ix.ByLabel[n.Label], n.ID)
		}
		if n.Inv >= 0 {
			m := l.g.Invocation(n.Inv).Module
			l.ix.ByModule[m] = insertSortedID(l.ix.ByModule[m], n.ID)
		}
	case provgraph.EvOpenInvocation:
		l.ix.ModuleInvs[ev.Module] = append(l.ix.ModuleInvs[ev.Module], ev.Inv)
	case provgraph.EvSetNodeInv:
		// The m-node joins its module's postings once the back-reference
		// lands (it was created before its invocation record existed).
		m := l.g.Invocation(ev.Inv).Module
		l.ix.ByModule[m] = insertSortedID(l.ix.ByModule[m], ev.Src)
	}
	return nil
}

// insertSortedID appends id keeping the list sorted and duplicate-free.
// Ids almost always arrive in ascending order (the O(1) fast path); the
// binary-insert fallback keeps the postings invariant under any stream.
func insertSortedID(list []provgraph.NodeID, id provgraph.NodeID) []provgraph.NodeID {
	if n := len(list); n == 0 || list[n-1] < id {
		return append(list, id)
	}
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == id {
		return list
	}
	list = append(list, 0)
	copy(list[lo+1:], list[lo:])
	list[lo] = id
	return list
}

// Read runs fn against the live graph's query processor under a read
// lock: every read the processor supports (FindNodes, Subgraph, Lineage,
// WhatIfDelete, Expr, exports, stats) is consistent with a fixed event
// prefix, while ingestion continues the moment fn returns. Results must
// be materialized inside fn, not aliased past it.
func (l *LiveGraph) Read(fn func(*QueryProcessor) error) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return fn(l.qp)
}

// Checkpoint compacts the durable log: the current graph is written as a
// standard LPSK v2 snapshot and the WAL prefix it covers is deleted. It
// is a no-op for in-memory live graphs.
func (l *LiveGraph) Checkpoint() error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if l.log == nil {
		return nil
	}
	return l.checkpointHeld()
}

// checkpointHeld (writeMu held) snapshots and compacts. No writer can be
// applying events, so the graph is stable for serialization; concurrent
// readers share it harmlessly.
func (l *LiveGraph) checkpointHeld() error {
	// The checkpoint is named by the log's own sequence; events the log
	// has not absorbed yet must land there first or the snapshot would
	// contain events past the recorded checkpoint sequence.
	if err := l.flushPending(); err != nil {
		return fmt.Errorf("lipstick: checkpoint of %s: flushing unlogged events: %w", l.name, err)
	}
	if err := l.log.Checkpoint(&store.Snapshot{Graph: l.g}); err != nil {
		return err
	}
	l.mu.Lock()
	l.lastCkpt = l.log.CheckpointSeq()
	l.mu.Unlock()
	return nil
}

// CheckpointSeq returns the sequence covered by the newest checkpoint
// (0 for in-memory graphs or before the first checkpoint).
func (l *LiveGraph) CheckpointSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastCkpt
}

// Close flushes and closes the backing log (in-memory graphs: no-op).
func (l *LiveGraph) Close() error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if l.log == nil {
		return nil
	}
	if err := l.flushPending(); err != nil {
		l.log.Close()
		return err
	}
	return l.log.Close()
}

// LiveInfo summarizes a live graph for listings and metrics.
type LiveInfo struct {
	Name          string `json:"name"`
	Events        uint64 `json:"events"`
	Nodes         int    `json:"nodes"`
	Invocations   int    `json:"invocations"`
	Durable       bool   `json:"durable"`
	CheckpointSeq uint64 `json:"checkpointSeq"`
}

// Info snapshots the live graph's vital statistics.
func (l *LiveGraph) Info() LiveInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return LiveInfo{
		Name:          l.name,
		Events:        l.seq,
		Nodes:         l.g.NumNodes(),
		Invocations:   l.g.NumInvocations(),
		Durable:       l.log != nil,
		CheckpointSeq: l.lastCkpt,
	}
}
