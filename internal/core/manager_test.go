package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// saveMini persists a tracked mini-workflow snapshot and returns its path.
func saveMini(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := trackMini(t).Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSnapshotManagerCachesByPath(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "a.lpsk")
	m := NewSnapshotManager(2)

	qp1, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	qp2, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if qp1 != qp2 {
		t.Error("second Open reloaded instead of returning the cached processor")
	}
	if m.Len() != 1 {
		t.Errorf("cache len = %d", m.Len())
	}
}

func TestSnapshotManagerReloadsOnChange(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "a.lpsk")
	m := NewSnapshotManager(2)

	qp1, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the snapshot and force a different mtime (coarse filesystem
	// timestamps would otherwise make this racy).
	if err := trackMini(t).Save(path); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, past, past); err != nil {
		t.Fatal(err)
	}
	qp2, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if qp1 == qp2 {
		t.Error("Open returned the stale processor after the file changed")
	}
	qp3, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if qp2 != qp3 {
		t.Error("unchanged file reloaded")
	}
}

func TestSnapshotManagerEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	a := saveMini(t, dir, "a.lpsk")
	b := saveMini(t, dir, "b.lpsk")
	m := NewSnapshotManager(1)

	qpA, err := m.Open(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(b); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Errorf("cache len = %d, want 1 after eviction", m.Len())
	}
	qpA2, err := m.Open(a)
	if err != nil {
		t.Fatal(err)
	}
	if qpA == qpA2 {
		t.Error("evicted entry returned without a reload")
	}
}

func TestSnapshotManagerInvalidate(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "a.lpsk")
	m := NewSnapshotManager(2)
	qp1, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Invalidate(path)
	if m.Len() != 0 {
		t.Errorf("len after invalidate = %d", m.Len())
	}
	qp2, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if qp1 == qp2 {
		t.Error("invalidated entry not reloaded")
	}
}

func TestSnapshotManagerMissingFile(t *testing.T) {
	m := NewSnapshotManager(2)
	if _, err := m.Open(filepath.Join(t.TempDir(), "missing.lpsk")); err == nil {
		t.Error("opening a missing snapshot should fail")
	}
	if m.Len() != 0 {
		t.Errorf("missing file left %d cache slots", m.Len())
	}
}

// TestSnapshotManagerConcurrent hammers one manager from many goroutines
// across two paths; run under -race this checks the locking discipline,
// and all callers of one path must observe a single load.
func TestSnapshotManagerConcurrent(t *testing.T) {
	dir := t.TempDir()
	paths := []string{saveMini(t, dir, "a.lpsk"), saveMini(t, dir, "b.lpsk")}
	m := NewSnapshotManager(2)

	var wg sync.WaitGroup
	got := make([]*QueryProcessor, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qp, err := m.Open(paths[i%2])
			if err != nil {
				t.Error(err)
				return
			}
			// Exercise a read-only query on the shared processor.
			_ = qp.FindNodes(NodeFilter{Label: "item0"})
			got[i] = qp
		}(i)
	}
	wg.Wait()
	for i := 2; i < len(got); i++ {
		if got[i] != got[i%2] {
			t.Errorf("path %d loaded more than once", i%2)
		}
	}
}
