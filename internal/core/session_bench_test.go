package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/workflow"
	"lipstick/internal/workflowgen"
)

// The session series contrasts copy-on-write sessions (provgraph.Overlay)
// against the Clone() baseline the server used to pay per zoom request,
// at two graph sizes — the overlay's costs must stay sub-linear in graph
// size. Recorded runs live in EXPERIMENTS.md.

// sessionBenchSizes are dealership scales; benchCars matches the rest of
// the core suite.
var sessionBenchSizes = []int{300, benchCars}

func sessionBenchProcessor(b *testing.B, cars int) *QueryProcessor {
	b.Helper()
	if cars == benchCars {
		return benchProcessor(b) // share the expensive build
	}
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: cars, NumExec: benchExecs, Seed: 1,
		Gran: workflow.Fine, StopOnPurchase: false,
	})
	if err != nil {
		b.Fatal(err)
	}
	return NewQueryProcessor(&store.Snapshot{Graph: run.Runner.Graph()})
}

// BenchmarkSessionCreate measures opening a mutation session (overlay)
// against deep-copying the graph (the Clone baseline).
func BenchmarkSessionCreate(b *testing.B) {
	for _, cars := range sessionBenchSizes {
		qp := sessionBenchProcessor(b, cars)
		g := qp.Graph()
		path := filepath.Join(b.TempDir(), "bench.lpsk")
		if err := store.Save(path, &store.Snapshot{Graph: g}); err != nil {
			b.Fatal(err)
		}
		reg := NewRegistry(nil, WithSessionLimit(1<<20))
		if err := reg.Register("bench", path); err != nil {
			b.Fatal(err)
		}
		nodes := float64(g.TotalNodes())
		b.Run(fmt.Sprintf("overlay/cars=%d", cars), func(b *testing.B) {
			b.ReportMetric(nodes, "nodes")
			for i := 0; i < b.N; i++ {
				if _, err := reg.CreateSession("bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("clone/cars=%d", cars), func(b *testing.B) {
			b.ReportMetric(nodes, "nodes")
			for i := 0; i < b.N; i++ {
				g.Clone()
			}
		})
	}
}

// BenchmarkSessionFirstZoom measures session-create plus the first
// zoom-out — the interactive "open a what-if view" operation `lipstick
// serve` performs — via the overlay vs. via Clone.
func BenchmarkSessionFirstZoom(b *testing.B) {
	for _, cars := range sessionBenchSizes {
		qp := sessionBenchProcessor(b, cars)
		g := qp.Graph()
		nodes := float64(g.TotalNodes())
		b.Run(fmt.Sprintf("overlay/cars=%d", cars), func(b *testing.B) {
			b.ReportMetric(nodes, "nodes")
			for i := 0; i < b.N; i++ {
				ov := provgraph.NewOverlay(g)
				ov.ZoomOut("M_dealer1")
			}
		})
		b.Run(fmt.Sprintf("clone/cars=%d", cars), func(b *testing.B) {
			b.ReportMetric(nodes, "nodes")
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				c.ZoomOut("M_dealer1")
			}
		})
	}
}

// BenchmarkSessionApplyDelete measures an applied deletion propagation
// with aggregate recomputation through a fresh session view vs. Clone.
func BenchmarkSessionApplyDelete(b *testing.B) {
	qp := sessionBenchProcessor(b, benchCars)
	g := qp.Graph()
	targets := qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeWorkflowInput}})
	if len(targets) == 0 {
		b.Fatal("no targets")
	}
	b.Run("overlay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ov := provgraph.NewOverlay(g)
			ov.Delete(targets[i%len(targets)])
			ov.RecomputeAggregates()
		}
	})
	b.Run("clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := g.Clone()
			c.Delete(targets[i%len(targets)])
			c.RecomputeAggregates()
		}
	})
}
