package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

func TestRegistryRegisterAndLookup(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "mini.lpsk")
	r := NewRegistry(nil)

	if err := r.Register("mini", path); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("mini", path); err != nil {
		t.Errorf("re-registering the same path: %v", err)
	}
	if err := r.Register("mini", filepath.Join(dir, "other.lpsk")); err == nil {
		t.Error("registering a taken name with a different path should fail")
	}
	for _, bad := range []string{"", "a/b", `a\b`} {
		if err := r.Register(bad, path); err == nil {
			t.Errorf("Register(%q) should fail", bad)
		}
	}

	got, err := r.Lookup("mini")
	if err != nil || got != path {
		t.Fatalf("Lookup = %q, %v", got, err)
	}
	if _, err := r.Open("mini"); err != nil {
		t.Fatalf("Open: %v", err)
	}

	_, err = r.Lookup("nope")
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Kind != "snapshot" || nf.Name != "nope" {
		t.Fatalf("Lookup(nope) = %v, want snapshot NotFoundError", err)
	}
}

func TestRegistryRegisterDir(t *testing.T) {
	dir := t.TempDir()
	saveMini(t, dir, "b.lpsk")
	saveMini(t, dir, "a.lpsk")
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(nil)
	names, err := r.RegisterDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[a b]" {
		t.Fatalf("names = %v", names)
	}
	snaps := r.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "a" || snaps[1].Name != "b" {
		t.Fatalf("Snapshots = %+v", snaps)
	}
	if _, err := r.RegisterDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("RegisterDir on a missing dir should fail")
	}
}

func TestRegistrySessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "mini.lpsk")
	r := NewRegistry(nil)
	if err := r.Register("mini", path); err != nil {
		t.Fatal(err)
	}

	if _, err := r.CreateSession("nope"); err == nil {
		t.Fatal("CreateSession on an unknown snapshot should fail")
	}
	s, err := r.CreateSession("mini")
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == "" || s.SnapshotName() != "mini" {
		t.Fatalf("session = %q over %q", s.ID(), s.SnapshotName())
	}
	if got, err := r.Session(s.ID()); err != nil || got != s {
		t.Fatalf("Session(%q) = %v, %v", s.ID(), got, err)
	}
	if r.NumSessions() != 1 {
		t.Fatalf("NumSessions = %d", r.NumSessions())
	}
	if err := r.CloseSession(s.ID()); err != nil {
		t.Fatal(err)
	}
	_, err = r.Session(s.ID())
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Kind != "session" || nf.Name != s.ID() {
		t.Fatalf("Session after close = %v, want session NotFoundError", err)
	}
	if err := r.CloseSession(s.ID()); !errors.As(err, &nf) {
		t.Fatalf("double close = %v", err)
	}
}

func TestRegistrySessionTTLAndLRUCap(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "mini.lpsk")
	r := NewRegistry(nil, WithSessionTTL(time.Minute), WithSessionLimit(2))
	if err := r.Register("mini", path); err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	r.now = func() time.Time { return clock }

	s1, err := r.CreateSession("mini")
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Second)
	s2, err := r.CreateSession("mini")
	if err != nil {
		t.Fatal(err)
	}

	// The cap evicts the least recently used session (s1).
	clock = clock.Add(time.Second)
	if _, err := r.CreateSession("mini"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Session(s1.ID()); err == nil {
		t.Fatal("s1 should have been LRU-evicted")
	}
	if _, err := r.Session(s2.ID()); err != nil {
		t.Fatalf("s2 should survive the cap: %v", err)
	}

	// TTL expires idle sessions; touched ones survive.
	clock = clock.Add(59 * time.Second)
	if _, err := r.Session(s2.ID()); err != nil {
		t.Fatalf("s2 expired too early: %v", err)
	}
	clock = clock.Add(2 * time.Minute)
	if _, err := r.Session(s2.ID()); err == nil {
		t.Fatal("s2 should have expired")
	}
	if n := r.NumSessions(); n != 1 {
		t.Fatalf("NumSessions after expiry = %d", n) // only the third session's slot remains...
	}
	clock = clock.Add(3 * time.Minute)
	if n := r.ExpireSessions(); n != 1 {
		t.Fatalf("ExpireSessions = %d", n)
	}
	if len(r.Sessions()) != 0 {
		t.Fatalf("Sessions = %v", r.Sessions())
	}
}

// TestSessionEqualsCloneBaseline is the acceptance check: session-scoped
// find/subgraph/lineage/dot through the overlay equal the same queries on
// a Clone()-then-mutate baseline, across zoom and delete.
func TestSessionEqualsCloneBaseline(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "mini.lpsk")
	r := NewRegistry(nil)
	if err := r.Register("mini", path); err != nil {
		t.Fatal(err)
	}
	base, err := r.Open("mini")
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: private clone of the base graph, mutated via the
	// pre-session code path.
	clone := base.Graph().Clone()
	baseline := NewQueryProcessor(&store.Snapshot{Graph: clone})

	s, err := r.CreateSession("mini")
	if err != nil {
		t.Fatal(err)
	}

	// Mutation sequence: zoom out a module, then delete a base tuple.
	if _, err := s.ZoomOut("M_match"); err != nil {
		t.Fatal(err)
	}
	if err := baseline.ZoomOut("M_match"); err != nil {
		t.Fatal(err)
	}
	tuples := s.FindNodes(NodeFilter{Label: "item0"})
	if len(tuples) != 1 {
		// item0 is hidden by the zoom of M_match (its state feeds it);
		// fall back to a workflow input.
		tuples = s.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeWorkflowInput}})
	}
	if len(tuples) == 0 {
		t.Fatal("no node to delete")
	}
	target := tuples[0]
	res, _ := s.ApplyDelete(target)
	wantRes, _ := baseline.ApplyDelete(target)
	if fmt.Sprint(res.Removed) != fmt.Sprint(wantRes.Removed) {
		t.Fatalf("delete removed %v, baseline %v", res.Removed, wantRes.Removed)
	}

	// Every query surface must agree with the baseline.
	for _, f := range []NodeFilter{
		{},
		{Types: []provgraph.Type{provgraph.TypeZoom}},
		{Types: []provgraph.Type{provgraph.TypeModuleOutput}},
		{Ops: []provgraph.Op{provgraph.OpAgg}},
		{Module: "M_match"},
		{Label: "item1"},
	} {
		got, want := s.FindNodes(f), baseline.FindNodes(f)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("FindNodes(%+v): session %v, baseline %v", f, got, want)
		}
	}
	for id := 0; id < clone.TotalNodes(); id++ {
		nid := provgraph.NodeID(id)
		if !clone.Alive(nid) {
			continue
		}
		if fmt.Sprint(s.Subgraph(nid).Nodes) != fmt.Sprint(baseline.Subgraph(nid).Nodes) {
			t.Errorf("subgraph(%d) differs", id)
		}
		gl, wl := s.Lineage(nid), baseline.Lineage(nid)
		if fmt.Sprint(gl) != fmt.Sprint(wl) {
			t.Errorf("lineage(%d): session %+v, baseline %+v", id, gl, wl)
		}
		if s.Provenance(nid) != baseline.Expr(nid).String() {
			t.Errorf("provenance(%d) differs", id)
		}
	}
	var gotDOT, wantDOT bytes.Buffer
	if err := s.WriteDOT(&gotDOT, "t"); err != nil {
		t.Fatal(err)
	}
	if err := clone.WriteDOT(&wantDOT, "t"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotDOT.Bytes(), wantDOT.Bytes()) {
		t.Error("session DOT differs from the clone baseline's")
	}
	gs, ws := s.Stats(), clone.ComputeStats()
	if gs.Nodes != ws.Nodes || gs.Edges != ws.Edges {
		t.Errorf("stats: session %+v, baseline %+v", gs, ws)
	}

	// Zoom stack behavior matches the processor's.
	if _, err := s.ZoomOut("M_match"); err == nil {
		t.Error("double zoom-out of one module should fail")
	}
	if _, err := s.ZoomOut(); err == nil {
		t.Error("empty zoom-out should fail")
	}
	if _, err := s.ZoomOut("M_ghost"); err == nil {
		t.Error("zoom-out of an unknown module should fail")
	}
	if _, err := s.ZoomIn(); err != nil {
		t.Errorf("ZoomIn: %v", err)
	}
	if err := baseline.ZoomIn(); err != nil {
		t.Fatal(err)
	}
	if !provgraph.ViewsStructurallyEqual(sessionView(s), clone) {
		t.Error("views differ after zoom-in")
	}
	if _, err := s.ZoomIn(); err == nil {
		t.Error("ZoomIn with an empty stack should fail")
	}
	if got := s.ZoomedOut(); len(got) != 0 {
		t.Errorf("ZoomedOut = %v", got)
	}
}

// sessionView exposes a session's overlay for structural assertions.
func sessionView(s *Session) provgraph.GraphView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overlay
}

// encodeBaseGraph serializes the shared base graph; the churn test
// asserts the bytes are identical before and after session traffic.
func encodeBaseGraph(t *testing.T, qp *QueryProcessor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Write(&buf, &store.Snapshot{Graph: qp.Graph(), Outputs: qp.Outputs()}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRegistryConcurrentSessionChurn hammers one registry from many
// goroutines — creating, mutating, querying, and closing sessions while
// readers query the shared base — and asserts the base graph is
// byte-identical afterwards. Run with -race.
func TestRegistryConcurrentSessionChurn(t *testing.T) {
	dir := t.TempDir()
	path := saveMini(t, dir, "mini.lpsk")
	r := NewRegistry(nil, WithSessionLimit(64))
	if err := r.Register("mini", path); err != nil {
		t.Fatal(err)
	}
	base, err := r.Open("mini")
	if err != nil {
		t.Fatal(err)
	}
	before := encodeBaseGraph(t, base)
	inputs := base.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeBaseTuple}})
	if len(inputs) == 0 {
		t.Fatal("no base tuples")
	}

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errc := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() { // session churn
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s, err := r.CreateSession("mini")
				if err != nil {
					errc <- err
					return
				}
				if _, err := s.ZoomOut("M_match"); err != nil {
					errc <- err
					return
				}
				target := inputs[(w*iters+i)%len(inputs)]
				s.WhatIfDelete(target)
				s.ApplyDelete(target)
				s.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeZoom}})
				s.Lineage(0)
				s.Stats()
				if i%2 == 0 {
					if err := r.CloseSession(s.ID()); err != nil {
						errc <- err
						return
					}
				} else if _, err := s.ZoomIn(); err != nil {
					errc <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // concurrent base readers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				base.FindNodes(NodeFilter{Module: "M_match"})
				base.Subgraph(inputs[i%len(inputs)])
				base.Lineage(inputs[i%len(inputs)])
				base.WhatIfDelete(inputs[i%len(inputs)])
				if _, err := r.Open("mini"); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	after := encodeBaseGraph(t, base)
	if !bytes.Equal(before, after) {
		t.Fatal("session churn mutated the shared base graph")
	}
	if !base.Graph().IsAcyclic() {
		t.Fatal("base graph corrupted")
	}
}
