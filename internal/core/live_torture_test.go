package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"lipstick/internal/provgraph"
)

// TestLiveViewSeqConsistencyTorture is the seq-consistency contract of
// the epoch-published read path, run under enough concurrency that the
// race detector audits the publish machinery: while one writer streams a
// captured dealership run into a live graph (publishing every 64 events),
// several readers hammer ReadView, query through every view they see,
// and retain one view per distinct sequence number. Afterwards each
// retained view's graph must be StructurallyEqual to a sequential replay
// of the event stream truncated at exactly the view's Seq — a published
// view is a consistent event prefix, never a torn mid-batch state.
func TestLiveViewSeqConsistencyTorture(t *testing.T) {
	_, events := captureDealership(t, 300, 5)
	lg := NewLiveGraph("torture",
		WithPublishEvery(64), WithPublishMaxStale(time.Millisecond))

	const readers = 4
	stop := make(chan struct{})
	retained := make([]map[uint64]*LiveView, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		retained[r] = map[uint64]*LiveView{}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := lg.ReadView()
				if v.Seq < last {
					t.Errorf("view seq went backwards: %d after %d", v.Seq, last)
					return
				}
				last = v.Seq
				if _, ok := retained[r][v.Seq]; !ok {
					retained[r][v.Seq] = v
				}
				// Query through the view: the index and traversal paths
				// must be safe against the concurrent writer too.
				qp := v.QP
				ids := qp.FindNodes(NodeFilter{Types: []provgraph.Type{provgraph.TypeInvocation}})
				if len(ids) > 0 {
					_ = qp.Lineage(ids[len(ids)-1])
				}
			}
		}(r)
	}

	const chunk = 37 // deliberately misaligned with the publish cadence
	seq := uint64(1)
	for next := 0; next < len(events); next += chunk {
		end := next + chunk
		if end > len(events) {
			end = len(events)
		}
		if _, err := lg.Append(seq, events[next:end]); err != nil {
			t.Fatal(err)
		}
		seq += uint64(end - next)
		// Yield between batches so the readers actually interleave with
		// the writer on small machines (GOMAXPROCS=1 CI boxes included).
		time.Sleep(50 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	// The post-ingest ReadView must observe every applied event — once
	// the configured staleness bound has lapsed (inside it, serving the
	// previous view is the contract, not a bug).
	time.Sleep(3 * time.Millisecond)
	final := lg.ReadView()
	if final.Seq != uint64(len(events)) {
		t.Fatalf("final view seq = %d, want %d", final.Seq, len(events))
	}

	// Distinct retained sequences, ascending, deduped across readers.
	views := map[uint64]*LiveView{final.Seq: final}
	for _, m := range retained {
		for s, v := range m {
			views[s] = v
		}
	}
	var seqs []uint64
	for s := range views {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	t.Logf("verifying %d distinct view sequences", len(seqs))
	if len(seqs) < 3 {
		t.Fatalf("only %d distinct views retained; the readers never raced the writer", len(seqs))
	}

	// One sequential replay, paused at each retained sequence: the view
	// graph must equal the truncated prefix exactly.
	replay := provgraph.New()
	applied := uint64(0)
	for _, s := range seqs {
		for applied < s {
			if err := provgraph.Apply(replay, events[applied]); err != nil {
				t.Fatal(err)
			}
			applied++
		}
		vg := views[s].QP.Graph()
		if vg.TotalNodes() != replay.TotalNodes() {
			t.Fatalf("view at seq %d has %d node slots, replay has %d",
				s, vg.TotalNodes(), replay.TotalNodes())
		}
		if !replay.StructurallyEqual(vg) {
			t.Fatalf("view at seq %d is not StructurallyEqual to the sequential replay truncated there", s)
		}
	}
}
