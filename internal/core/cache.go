package core

import (
	"container/list"
	"sync"
)

// QueryCache is a seq-stamped LRU cache of marshaled query responses.
// Correctness comes from the key, not from invalidation: callers include
// the graph name and the published view's sequence number in the key, so
// a cached body can only ever be served for the exact immutable view
// that produced it — a republished view changes the sequence and misses.
// Stale entries age out through LRU pressure; nothing is ever explicitly
// invalidated.
//
// Bodies are cached as encoded bytes, which both skips re-encoding on a
// hit and guarantees hits cannot observe later mutation of shared result
// structures.
type QueryCache struct {
	mu       sync.Mutex
	maxItems int
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

// cacheItem is one cached response body.
type cacheItem struct {
	key  string
	body []byte
}

// DefaultQueryCacheItems bounds the entry count of a serving query cache.
const DefaultQueryCacheItems = 4096

// DefaultQueryCacheBytes bounds the total cached body bytes (64 MiB).
const DefaultQueryCacheBytes = 64 << 20

// NewQueryCache builds a cache holding at most maxItems entries and
// maxBytes of body data (<= 0 selects the defaults).
func NewQueryCache(maxItems int, maxBytes int64) *QueryCache {
	if maxItems <= 0 {
		maxItems = DefaultQueryCacheItems
	}
	if maxBytes <= 0 {
		maxBytes = DefaultQueryCacheBytes
	}
	return &QueryCache{
		maxItems: maxItems,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, refreshing its recency. The
// returned slice is shared: callers must treat it as read-only.
func (c *QueryCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		statQueryCacheMisses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	statQueryCacheHits.Add(1)
	return el.Value.(*cacheItem).body, true
}

// Put caches body under key, evicting least-recently-used entries to
// respect the bounds. Bodies larger than the byte budget are not cached.
// The cache takes ownership of body; callers must not mutate it after.
func (c *QueryCache) Put(key string, body []byte) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.bytes += int64(len(body)) - int64(len(it.body))
		it.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for len(c.items) > c.maxItems || c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		it := el.Value.(*cacheItem)
		c.ll.Remove(el)
		delete(c.items, it.key)
		c.bytes -= int64(len(it.body))
	}
}

// Len returns the number of cached entries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the total cached body bytes.
func (c *QueryCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
