package core

import (
	"sort"

	"lipstick/internal/provgraph"
	"lipstick/internal/semiring"
)

// NodeFilter selects graph nodes by structural properties; zero fields
// match everything. It is the selection layer provenance queries (in the
// spirit of ProQL [20]) are built from.
type NodeFilter struct {
	// Classes restricts to p-nodes or v-nodes.
	Classes []provgraph.Class
	// Types restricts the node type (workflow input, invocation, ...).
	Types []provgraph.Type
	// Ops restricts the operation label (+, ·, δ, ⊗, agg, bb, const).
	Ops []provgraph.Op
	// Label requires an exact label match (token, module or function
	// name).
	Label string
	// Module restricts to nodes anchored to an invocation of this module
	// (m/i/o/s/zoom nodes).
	Module string
}

func containsClass(cs []provgraph.Class, c provgraph.Class) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func containsType(ts []provgraph.Type, t provgraph.Type) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

func containsOp(os []provgraph.Op, o provgraph.Op) bool {
	for _, x := range os {
		if x == o {
			return true
		}
	}
	return false
}

// Matches reports whether a node satisfies the filter.
func (f NodeFilter) Matches(g *provgraph.Graph, n provgraph.Node) bool {
	if len(f.Classes) > 0 && !containsClass(f.Classes, n.Class) {
		return false
	}
	if len(f.Types) > 0 && !containsType(f.Types, n.Type) {
		return false
	}
	if len(f.Ops) > 0 && !containsOp(f.Ops, n.Op) {
		return false
	}
	if f.Label != "" && n.Label != f.Label {
		return false
	}
	if f.Module != "" {
		if n.Inv < 0 {
			return false
		}
		if g.Invocation(n.Inv).Module != f.Module {
			return false
		}
	}
	return true
}

// FindNodes returns the live nodes matching the filter, in id order.
func (qp *QueryProcessor) FindNodes(f NodeFilter) []provgraph.NodeID {
	var out []provgraph.NodeID
	qp.graph.Nodes(func(n provgraph.Node) bool {
		if f.Matches(qp.graph, n) {
			out = append(out, n.ID)
		}
		return true
	})
	return out
}

// Lineage classifies everything a node's existence draws on.
type Lineage struct {
	Node provgraph.NodeID
	// Inputs are the workflow-input ancestors (tokens of type "I").
	Inputs []provgraph.NodeID
	// StateTuples are the base state-tuple ancestors.
	StateTuples []provgraph.NodeID
	// Modules are the distinct module names whose invocations participate
	// in the derivation, sorted.
	Modules []string
	// AncestorCount is the total number of ancestors.
	AncestorCount int
}

// Lineage computes the classified ancestry of a node.
func (qp *QueryProcessor) Lineage(id provgraph.NodeID) Lineage {
	g := qp.graph
	l := Lineage{Node: id}
	moduleSet := map[string]bool{}
	for _, anc := range g.Ancestors(id) {
		n := g.Node(anc)
		l.AncestorCount++
		switch n.Type {
		case provgraph.TypeWorkflowInput:
			l.Inputs = append(l.Inputs, anc)
		case provgraph.TypeBaseTuple:
			l.StateTuples = append(l.StateTuples, anc)
		case provgraph.TypeInvocation, provgraph.TypeZoom:
			moduleSet[n.Label] = true
		}
	}
	for m := range moduleSet {
		l.Modules = append(l.Modules, m)
	}
	sort.Strings(l.Modules)
	return l
}

// Expr reconstructs a node's provenance as a semiring expression
// (Section 2.3's polynomial reading of the graph).
func (qp *QueryProcessor) Expr(id provgraph.NodeID) semiring.Expr {
	return qp.graph.Expr(id)
}

// Polynomial returns the canonical N[X] polynomial of a node's provenance.
func (qp *QueryProcessor) Polynomial(id provgraph.NodeID) semiring.Polynomial {
	return semiring.ToPolynomial(qp.graph.Expr(id))
}
