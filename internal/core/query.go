package core

import (
	"sort"

	"lipstick/internal/provgraph"
	"lipstick/internal/semiring"
)

// NodeFilter selects graph nodes by structural properties; zero fields
// match everything. It is the selection layer provenance queries (in the
// spirit of ProQL [20]) are built from.
type NodeFilter struct {
	// Classes restricts to p-nodes or v-nodes.
	Classes []provgraph.Class
	// Types restricts the node type (workflow input, invocation, ...).
	Types []provgraph.Type
	// Ops restricts the operation label (+, ·, δ, ⊗, agg, bb, const).
	Ops []provgraph.Op
	// Label requires an exact label match (token, module or function
	// name).
	Label string
	// Module restricts to nodes anchored to an invocation of this module
	// (m/i/o/s/zoom nodes).
	Module string
}

// contains reports whether xs holds x (the multi-value filter dimensions
// are tiny slices, so a linear probe beats any set structure).
func contains[T comparable](xs []T, x T) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Matches reports whether a node satisfies the filter. The view may be a
// materialized graph or a session overlay.
func (f NodeFilter) Matches(g provgraph.GraphView, n provgraph.Node) bool {
	if len(f.Classes) > 0 && !contains(f.Classes, n.Class) {
		return false
	}
	if len(f.Types) > 0 && !contains(f.Types, n.Type) {
		return false
	}
	if len(f.Ops) > 0 && !contains(f.Ops, n.Op) {
		return false
	}
	if f.Label != "" && n.Label != f.Label {
		return false
	}
	if f.Module != "" {
		if n.Inv < 0 {
			return false
		}
		if g.Invocation(n.Inv).Module != f.Module {
			return false
		}
	}
	return true
}

// FindNodes returns the live nodes matching the filter, in id order.
//
// When the filter constrains an indexed dimension (type, op, label, or
// module) the candidates come from intersecting the snapshot's postings
// lists; only nodes appended to the graph after the index was built (zoom
// nodes installed at query time) are swept linearly. Unconstrained (or
// class-only) filters fall back to the full scan, which is what they
// would touch anyway.
func (qp *QueryProcessor) FindNodes(f NodeFilter) []provgraph.NodeID {
	return findNodesIn(qp.graph, qp.index, f)
}

// findNodesIn is the shared selection engine: it works over any view (a
// materialized graph or a session overlay) against the base snapshot's
// postings. Liveness and field predicates are re-checked through the view,
// so a session's kills and value overrides are honored; nodes the view
// appended past the index's coverage (zoom nodes) are swept separately.
func findNodesIn(v provgraph.GraphView, ix *Index, f NodeFilter) []provgraph.NodeID {
	cand, indexed := ix.candidates(f)
	if !indexed {
		return findNodesScanIn(v, f)
	}
	var out []provgraph.NodeID
	for _, id := range cand {
		if v.Alive(id) && f.Matches(v, v.Node(id)) {
			out = append(out, id)
		}
	}
	for id := ix.Coverage(); id < v.TotalNodes(); id++ {
		nid := provgraph.NodeID(id)
		if v.Alive(nid) && f.Matches(v, v.Node(nid)) {
			out = append(out, nid)
		}
	}
	return out
}

// findNodesScan is the pre-index full scan, kept as the fallback for
// unindexed filters and as the benchmark baseline.
func (qp *QueryProcessor) findNodesScan(f NodeFilter) []provgraph.NodeID {
	return findNodesScanIn(qp.graph, f)
}

func findNodesScanIn(v provgraph.GraphView, f NodeFilter) []provgraph.NodeID {
	var out []provgraph.NodeID
	v.Nodes(func(n provgraph.Node) bool {
		if f.Matches(v, n) {
			out = append(out, n.ID)
		}
		return true
	})
	return out
}

// Lineage classifies everything a node's existence draws on.
type Lineage struct {
	Node provgraph.NodeID
	// Inputs are the workflow-input ancestors (tokens of type "I").
	Inputs []provgraph.NodeID
	// StateTuples are the base state-tuple ancestors.
	StateTuples []provgraph.NodeID
	// Modules are the distinct module names whose invocations participate
	// in the derivation, sorted.
	Modules []string
	// AncestorCount is the total number of ancestors.
	AncestorCount int
}

// Lineage computes the classified ancestry of a node.
func (qp *QueryProcessor) Lineage(id provgraph.NodeID) Lineage {
	return lineageIn(qp.graph, id)
}

// lineageIn classifies a node's ancestry through any view.
func lineageIn(g provgraph.GraphView, id provgraph.NodeID) Lineage {
	l := Lineage{Node: id}
	moduleSet := map[string]bool{}
	for _, anc := range g.Ancestors(id) {
		n := g.Node(anc)
		l.AncestorCount++
		switch n.Type {
		case provgraph.TypeWorkflowInput:
			l.Inputs = append(l.Inputs, anc)
		case provgraph.TypeBaseTuple:
			l.StateTuples = append(l.StateTuples, anc)
		case provgraph.TypeInvocation, provgraph.TypeZoom:
			moduleSet[n.Label] = true
		}
	}
	for m := range moduleSet {
		l.Modules = append(l.Modules, m)
	}
	sort.Strings(l.Modules)
	return l
}

// Expr reconstructs a node's provenance as a semiring expression
// (Section 2.3's polynomial reading of the graph).
func (qp *QueryProcessor) Expr(id provgraph.NodeID) semiring.Expr {
	return qp.graph.Expr(id)
}

// Polynomial returns the canonical N[X] polynomial of a node's provenance.
func (qp *QueryProcessor) Polynomial(id provgraph.NodeID) semiring.Polynomial {
	return semiring.ToPolynomial(qp.graph.Expr(id))
}
