// Package core implements the Lipstick system of Section 5.1: the
// Provenance Tracker, which executes workflows while constructing
// fine-grained provenance and writes provenance-annotated tuples plus the
// provenance graph to the filesystem, and the Query Processor, which loads
// that output, rebuilds the graph in memory, and answers zoom, deletion,
// subgraph, and dependency queries (Section 4).
package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"lipstick/internal/nested"
	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/workflow"
)

// Tracker is the Provenance Tracker sub-system: it drives workflow
// executions and accumulates the annotated outputs for persistence.
type Tracker struct {
	runner     *workflow.Runner
	executions []*workflow.Execution
}

// NewTracker validates the workflow and prepares tracking at the given
// granularity.
func NewTracker(w *workflow.Workflow, gran workflow.Granularity, opts ...workflow.Option) (*Tracker, error) {
	runner, err := workflow.NewRunner(w, gran, opts...)
	if err != nil {
		return nil, err
	}
	return &Tracker{runner: runner}, nil
}

// Runner exposes the underlying workflow runner (state seeding etc.).
func (t *Tracker) Runner() *workflow.Runner { return t.runner }

// Execute runs one workflow execution and records its outputs.
func (t *Tracker) Execute(inputs workflow.Inputs) (*workflow.Execution, error) {
	exec, err := t.runner.Execute(inputs)
	if err != nil {
		return nil, err
	}
	t.executions = append(t.executions, exec)
	return exec, nil
}

// Executions returns the executions recorded so far.
func (t *Tracker) Executions() []*workflow.Execution { return t.executions }

// Snapshot assembles the tracker's persistent output: the provenance graph
// and every execution's annotated output relations.
func (t *Tracker) Snapshot() *store.Snapshot {
	snap := &store.Snapshot{Graph: t.runner.Graph()}
	if snap.Graph == nil {
		snap.Graph = provgraph.New() // plain runs persist an empty graph
	}
	for _, e := range t.executions {
		nodes := make([]string, 0, len(e.Outputs))
		for node := range e.Outputs {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		for _, node := range nodes {
			rels := e.Outputs[node]
			names := make([]string, 0, len(rels))
			for rel := range rels {
				names = append(names, rel)
			}
			sort.Strings(names)
			for _, rel := range names {
				dump := store.RelationDump{Execution: e.Index, Node: node, Relation: rel}
				for _, tup := range rels[rel].Tuples {
					dump.Tuples = append(dump.Tuples, store.AnnotatedTuple{
						Tuple: tup.Tuple, Prov: tup.Prov, Mult: tup.Mult,
					})
				}
				snap.Outputs = append(snap.Outputs, dump)
			}
		}
	}
	return snap
}

// Save persists the tracker's output to the given path (the paper: "the
// sub-system output is written to the file-system, and is used as input by
// the Query Processor").
func (t *Tracker) Save(path string) error {
	return store.Save(path, t.Snapshot())
}

// WriteSnapshot streams the snapshot to a writer.
func (t *Tracker) WriteSnapshot(w io.Writer) error {
	return store.Write(w, t.Snapshot())
}

// QueryProcessor is the in-memory query sub-system over a provenance
// graph: zoom (Section 4.1), deletion propagation (Section 4.2), and
// subgraph/dependency queries (Sections 4.3, 5.1).
type QueryProcessor struct {
	graph *provgraph.Graph
	index *Index

	// outputs is populated eagerly for buffered snapshots; mapped (v3)
	// opens defer the decode behind outputsFn until the first accessor
	// needs it, so opening a snapshot stays O(1) in its size.
	outputs     []store.RelationDump
	outputsFn   func() ([]store.RelationDump, error)
	outputsOnce sync.Once
	outputsErr  error

	zooms  []*provgraph.ZoomRecord
	zoomed map[string]bool
}

// Load opens a tracker snapshot from disk and builds the in-memory graph.
// Columnar (v3) snapshots are memory-mapped where the platform allows it,
// making the open O(1) in snapshot size; older formats decode as before.
func Load(path string) (*QueryProcessor, error) {
	snap, err := store.LoadMapped(path)
	if err != nil {
		return nil, err
	}
	return NewQueryProcessor(snap), nil
}

// Read builds a query processor from a snapshot stream.
func Read(r io.Reader) (*QueryProcessor, error) {
	snap, err := store.Read(r)
	if err != nil {
		return nil, err
	}
	return NewQueryProcessor(snap), nil
}

// NewQueryProcessor wraps an already-loaded snapshot. Indexed (v2)
// snapshots contribute their persisted postings; otherwise the index is
// built from the graph here, once, instead of rescanning per query.
func NewQueryProcessor(snap *store.Snapshot) *QueryProcessor {
	return &QueryProcessor{
		graph:     snap.Graph,
		outputs:   snap.Outputs,
		outputsFn: snap.LazyOutputs,
		index:     newIndex(snap),
		zoomed:    map[string]bool{},
	}
}

// Index exposes the processor's postings index (module→invocation lookups
// and coverage introspection).
func (qp *QueryProcessor) Index() *Index { return qp.index }

// FromTracker builds a query processor directly over a tracker's live
// graph (without a round-trip through the filesystem).
func FromTracker(t *Tracker) *QueryProcessor {
	return NewQueryProcessor(t.Snapshot())
}

// Graph exposes the in-memory provenance graph.
func (qp *QueryProcessor) Graph() *provgraph.Graph { return qp.graph }

// Outputs returns the annotated output relations recorded by the tracker,
// decoding them on first use for mapped snapshots. A decode failure (a
// corrupted mapped file) yields nil; OutputsErr reports the cause.
func (qp *QueryProcessor) Outputs() []store.RelationDump { return qp.resolveOutputs() }

// OutputsErr reports the deferred output-decode error of a mapped
// snapshot, if any. It forces the decode.
func (qp *QueryProcessor) OutputsErr() error {
	qp.resolveOutputs()
	return qp.outputsErr
}

func (qp *QueryProcessor) resolveOutputs() []store.RelationDump {
	qp.outputsOnce.Do(func() {
		if qp.outputsFn == nil {
			return
		}
		qp.outputs, qp.outputsErr = qp.outputsFn()
		qp.outputsFn = nil
	})
	return qp.outputs
}

// Output finds one recorded relation by execution, node and relation name.
func (qp *QueryProcessor) Output(execution int, node, rel string) (*store.RelationDump, bool) {
	for i := range qp.resolveOutputs() {
		d := &qp.outputs[i]
		if d.Execution == execution && d.Node == node && d.Relation == rel {
			return d, true
		}
	}
	return nil, false
}

// FindOutputTuple locates the provenance node of an output tuple by value.
func (qp *QueryProcessor) FindOutputTuple(node, rel string, tuple *nested.Tuple) (provgraph.NodeID, bool) {
	for i := range qp.resolveOutputs() {
		d := &qp.outputs[i]
		if d.Node != node || d.Relation != rel {
			continue
		}
		for _, t := range d.Tuples {
			if t.Tuple.Equal(tuple) {
				return t.Prov, true
			}
		}
	}
	return provgraph.InvalidNode, false
}

// ZoomOut hides the internals of the given modules (all their invocations,
// per Section 4.1) and pushes the operation on the zoom stack.
func (qp *QueryProcessor) ZoomOut(modules ...string) error {
	for _, m := range modules {
		if qp.zoomed[m] {
			return fmt.Errorf("lipstick: module %q is already zoomed out", m)
		}
		if len(qp.graph.InvocationsOf(m)) == 0 {
			return fmt.Errorf("lipstick: no invocations of module %q in the graph", m)
		}
	}
	rec := qp.graph.ZoomOut(modules...)
	qp.zooms = append(qp.zooms, rec)
	for _, m := range modules {
		qp.zoomed[m] = true
	}
	return nil
}

// ZoomIn undoes the most recent ZoomOut (zooms nest like a stack, which
// guarantees ZoomIn restores exactly what the matching ZoomOut hid).
func (qp *QueryProcessor) ZoomIn() error {
	if len(qp.zooms) == 0 {
		return fmt.Errorf("lipstick: nothing is zoomed out")
	}
	rec := qp.zooms[len(qp.zooms)-1]
	qp.zooms = qp.zooms[:len(qp.zooms)-1]
	qp.graph.ZoomIn(rec)
	for _, m := range rec.Modules {
		delete(qp.zoomed, m)
	}
	return nil
}

// ZoomedOut lists the currently zoomed-out modules (sorted).
func (qp *QueryProcessor) ZoomedOut() []string {
	out := make([]string, 0, len(qp.zoomed))
	for m := range qp.zoomed {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// CoarseView zooms out every module, yielding the coarse-grained view of
// Section 3.1.
func (qp *QueryProcessor) CoarseView() error {
	seen := map[string]bool{}
	var modules []string
	qp.graph.Invocations(func(inv *provgraph.Invocation) bool {
		if !seen[inv.Module] && !qp.zoomed[inv.Module] {
			seen[inv.Module] = true
			modules = append(modules, inv.Module)
		}
		return true
	})
	if len(modules) == 0 {
		return nil
	}
	return qp.ZoomOut(modules...)
}

// Subgraph answers the subgraph query of Section 5.1.
func (qp *QueryProcessor) Subgraph(id provgraph.NodeID) *provgraph.SubgraphResult {
	return qp.graph.Subgraph(id)
}

// WhatIfDelete computes the effect of deleting the given nodes without
// modifying the graph (Section 4.2's analysis reading).
func (qp *QueryProcessor) WhatIfDelete(ids ...provgraph.NodeID) *provgraph.DeletionResult {
	return qp.graph.PropagateDeletion(ids...)
}

// ApplyDelete propagates the deletion destructively and recomputes
// affected aggregate values (Example 4.3).
func (qp *QueryProcessor) ApplyDelete(ids ...provgraph.NodeID) (*provgraph.DeletionResult, []provgraph.RecomputedAggregate) {
	res := qp.graph.Delete(ids...)
	recs := qp.graph.RecomputeAggregates()
	return res, recs
}

// DependsOn answers the dependency query of Section 4.3: does the
// existence of a depend on the existence of b?
func (qp *QueryProcessor) DependsOn(a, b provgraph.NodeID) bool {
	return qp.graph.DependsOn(a, b)
}
