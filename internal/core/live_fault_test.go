package core

import (
	"errors"
	"testing"

	"lipstick/internal/faultinject"
	"lipstick/internal/store"
	"lipstick/internal/testutil"
)

// TestLiveGraphRidesThroughInjectedFsyncFault drives the documented
// group-commit failure contract end to end with a real injected disk
// fault instead of a hand-closed file descriptor: the faulted append
// reports the error, the log is sticky-failed underneath, and the next
// append re-logs the lost suffix (flushBacklog + ResetFailed) so
// recovery sees every acked event exactly once.
func TestLiveGraphRidesThroughInjectedFsyncFault(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	defer faultinject.Reset()
	batch, events := captureDealership(t, 40, 2)
	dir := t.TempDir()
	lg, err := OpenLiveGraph("d", dir, WithLogOptions(store.WithGroupCommit(0, 0), store.WithFsync(true)))
	if err != nil {
		t.Fatal(err)
	}
	mid := uint64(len(events) / 2)
	if _, err := lg.Append(1, events[:mid]); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected fsync fault")
	faultinject.Arm("wal.fsync", faultinject.Fault{Err: injected, Count: 1})
	if _, err := lg.Append(mid+1, events[mid:mid+8]); err == nil {
		t.Fatal("append over a failing fsync succeeded")
	} else if !errors.Is(err, injected) {
		t.Fatalf("append error = %v, want the injected fault", err)
	}

	// The fault has passed (Count: 1); the next append must heal the log
	// (re-log the rolled-back suffix, clear the sticky failure) and land.
	if _, err := lg.Append(mid+9, events[mid+8:]); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	if lg.Seq() != uint64(len(events)) {
		t.Fatalf("seq = %d, want %d", lg.Seq(), len(events))
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := OpenLiveGraph("d", dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer func() {
		if err := restored.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if restored.Seq() != uint64(len(events)) {
		t.Fatalf("recovered seq = %d, want %d (no acked event may be lost)", restored.Seq(), len(events))
	}
	if err := restored.Read(func(qp *QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("recovered graph differs from the batch build")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
