package pig

import (
	"strings"
	"testing"

	"lipstick/internal/nested"
)

// dealerEnv builds the schemas of the car-dealership module (Example 2.1).
func dealerEnv() nested.RelationSchemas {
	str := nested.ScalarType(nested.KindString)
	return nested.RelationSchemas{
		"Requests": nested.NewSchema(
			nested.Field{Name: "UserId", Type: str},
			nested.Field{Name: "BidId", Type: str},
			nested.Field{Name: "Model", Type: str},
		),
		"Cars": nested.NewSchema(
			nested.Field{Name: "CarId", Type: str},
			nested.Field{Name: "Model", Type: str},
		),
		"SoldCars": nested.NewSchema(
			nested.Field{Name: "CarId", Type: str},
			nested.Field{Name: "BidId", Type: str},
		),
	}
}

// calcBidUDF returns the CalcBid black box used by the running example.
func calcBidUDF() *UDF {
	str := nested.ScalarType(nested.KindString)
	return &UDF{
		Name: "CalcBid",
		OutSchema: nested.NewSchema(
			nested.Field{Name: "BidId", Type: str},
			nested.Field{Name: "UserId", Type: str},
			nested.Field{Name: "Model", Type: str},
			nested.Field{Name: "Amount", Type: nested.ScalarType(nested.KindFloat)},
		),
		Fn: func(args []nested.Value) (*nested.Bag, error) {
			return nested.NewBag(nested.NewTuple(
				nested.Str("B1"), nested.Str("P1"), nested.Str("Civic"), nested.Float(20000),
			)), nil
		},
	}
}

const dealerQstate = `
ReqModel = FOREACH Requests GENERATE Model;
Inventory = JOIN Cars BY Model, ReqModel BY Model;
SoldInventory = JOIN Inventory BY CarId, SoldCars BY CarId;
CarsByModel = GROUP Inventory BY Cars::Model;
SoldByModel = GROUP SoldInventory BY Cars::Model;
NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
NumSoldByModel = FOREACH SoldByModel GENERATE group AS Model, COUNT(SoldInventory) AS NumSold;
AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model, NumSoldByModel BY Model;
InventoryBids = FOREACH AllInfoByModel GENERATE FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel));
`

func TestCompileDealerProgram(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(calcBidUDF())
	plan, err := CompileSource(dealerQstate, dealerEnv(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 9 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	// ReqModel: single string column named Model.
	rm := plan.Schemas["ReqModel"]
	if rm.Arity() != 1 || rm.Fields[0].Name != "Model" || rm.Fields[0].Type.Kind != nested.KindString {
		t.Errorf("ReqModel schema = %s", rm)
	}
	// Inventory: qualified join columns.
	inv := plan.Schemas["Inventory"]
	if inv.Arity() != 3 {
		t.Fatalf("Inventory schema = %s", inv)
	}
	if inv.IndexOf("Cars::CarId") != 0 || inv.IndexOf("ReqModel::Model") != 2 {
		t.Errorf("Inventory schema names = %s", inv)
	}
	// Unambiguous suffix lookup resolves CarId.
	if inv.IndexOf("CarId") != 0 {
		t.Error("suffix lookup for CarId failed")
	}
	// CarsByModel: (group, Inventory: bag).
	cbm := plan.Schemas["CarsByModel"]
	if cbm.Fields[0].Name != "group" || cbm.Fields[1].Name != "Inventory" ||
		cbm.Fields[1].Type.Kind != nested.KindBag {
		t.Errorf("CarsByModel schema = %s", cbm)
	}
	// NumCarsByModel: (Model: string, NumAvail: int).
	ncb := plan.Schemas["NumCarsByModel"]
	if ncb.Fields[1].Name != "NumAvail" || ncb.Fields[1].Type.Kind != nested.KindInt {
		t.Errorf("NumCarsByModel schema = %s", ncb)
	}
	// AllInfoByModel: group + three bags.
	aib := plan.Schemas["AllInfoByModel"]
	if aib.Arity() != 4 || aib.Fields[2].Name != "NumCarsByModel" {
		t.Errorf("AllInfoByModel schema = %s", aib)
	}
	// InventoryBids: CalcBid's output schema spliced by FLATTEN.
	ib := plan.Schemas["InventoryBids"]
	if ib.Arity() != 4 || ib.Fields[3].Name != "Amount" || ib.Fields[3].Type.Kind != nested.KindFloat {
		t.Errorf("InventoryBids schema = %s", ib)
	}
	// Foreach with aggregate flagged.
	fo, ok := plan.Steps[5].Op.(*ForeachOp)
	if !ok || !fo.HasAgg {
		t.Error("NumCarsByModel should be an aggregate FOREACH")
	}
	fl, ok := plan.Steps[8].Op.(*ForeachOp)
	if !ok || !fl.HasFlatten || fl.Items[0].Kind != ItemFlattenUDF {
		t.Error("InventoryBids should be a FLATTEN(UDF) FOREACH")
	}
}

func TestCompileErrors(t *testing.T) {
	env := dealerEnv()
	reg := NewRegistry()
	cases := []struct {
		src  string
		want string
	}{
		{"B = FOREACH Nope GENERATE x;", "unknown relation"},
		{"B = FOREACH Requests GENERATE Nope;", "unknown field"},
		{"B = FILTER Requests BY Model;", "must be boolean"},
		{"B = FILTER Requests BY Model + 1 > 2;", "numeric"},
		{"B = FOREACH Requests GENERATE COUNT(Model);", "does not reach a bag"},
		{"B = FOREACH Requests GENERATE CalcBid(Model);", "unknown function"},
		{"B = UNION Requests, Cars;", "different arities"},
		{"B = FOREACH Requests GENERATE Model, Model;", "duplicate output field"},
		{"B = JOIN Requests BY Model, Cars BY CarId, Cars BY Model;", ""},
		{"G = GROUP Requests BY Model; B = FOREACH G GENERATE SUM(Requests) AS s;", "requires a field"},
		{"G = GROUP Requests BY Model; B = FOREACH G GENERATE SUM(Requests.Model) AS s;", "non-numeric"},
		{"G = GROUP Requests BY Model; B = FOREACH G GENERATE COUNT(Requests), FLATTEN(Requests);", "cannot mix"},
		{"B = FOREACH Requests GENERATE FLATTEN(Model);", "must be a bag field"},
		{"B = FILTER Requests BY COUNT(Model) > 1;", "GENERATE item"},
		{"B = FOREACH Requests GENERATE Model.x;", "cannot traverse"},
	}
	for _, c := range cases {
		_, err := CompileSource(c.src, env, reg)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestCompileGroupMultiKey(t *testing.T) {
	env := dealerEnv()
	plan, err := CompileSource("B = GROUP Cars BY (Model, CarId);", env, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Schemas["B"]
	if s.Fields[0].Type.Kind != nested.KindTuple || s.Fields[0].Type.Elem.Arity() != 2 {
		t.Errorf("composite group key schema = %s", s)
	}
}

func TestCompileStarAndPositional(t *testing.T) {
	env := dealerEnv()
	plan, err := CompileSource("B = FOREACH Cars GENERATE *; C = FOREACH Cars GENERATE $1;", env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Schemas["B"].Equal(env["Cars"]) {
		t.Errorf("star schema = %s", plan.Schemas["B"])
	}
	cs := plan.Schemas["C"]
	if cs.Arity() != 1 || cs.Fields[0].Name != "Model" {
		t.Errorf("positional schema = %s", cs)
	}
}

func TestCompileUDFWithoutFlatten(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(calcBidUDF())
	plan, err := CompileSource("B = FOREACH Requests GENERATE CalcBid(Model) AS bids;", dealerEnv(), reg)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Schemas["B"]
	if s.Fields[0].Name != "bids" || s.Fields[0].Type.Kind != nested.KindBag {
		t.Errorf("UDF item schema = %s", s)
	}
}

func TestCompileAggregateDefaultsSingleColumn(t *testing.T) {
	env := nested.RelationSchemas{
		"V": nested.NewSchema(nested.Field{Name: "x", Type: nested.ScalarType(nested.KindInt)}),
	}
	// GROUP V BY x then SUM(V): bag with single numeric attribute defaults.
	plan, err := CompileSource("G = GROUP V BY x; B = FOREACH G GENERATE group, SUM(V) AS s;", env, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Schemas["B"]
	if s.Fields[1].Type.Kind != nested.KindInt {
		t.Errorf("SUM over int column should stay int, got %s", s.Fields[1].Type)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(&UDF{}); err == nil {
		t.Error("incomplete UDF registered")
	}
	u := calcBidUDF()
	if err := reg.Register(u); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(calcBidUDF()); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, ok := reg.Lookup("calcbid"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := reg.Register(&UDF{Name: "COUNT", OutSchema: u.OutSchema, Fn: u.Fn}); err == nil {
		t.Error("reserved aggregate name accepted")
	}
	if len(reg.Names()) != 1 {
		t.Error("Names wrong")
	}
	var nilReg *Registry
	if _, ok := nilReg.Lookup("x"); ok {
		t.Error("nil registry lookup should miss")
	}
}

func TestExprEval(t *testing.T) {
	schema := nested.NewSchema(
		nested.Field{Name: "a", Type: nested.ScalarType(nested.KindInt)},
		nested.Field{Name: "b", Type: nested.ScalarType(nested.KindFloat)},
		nested.Field{Name: "s", Type: nested.ScalarType(nested.KindString)},
		nested.Field{Name: "ok", Type: nested.ScalarType(nested.KindBool)},
	)
	tup := nested.NewTuple(nested.Int(7), nested.Float(2.5), nested.Str("hi"), nested.Bool(true))
	cases := []struct {
		src  string
		want nested.Value
	}{
		{"a + 1", nested.Int(8)},
		{"a / 2", nested.Int(3)},
		{"a % 4", nested.Int(3)},
		{"a + b", nested.Float(9.5)},
		{"a * b", nested.Float(17.5)},
		{"b / 0.0", nested.Null()},
		{"a / 0", nested.Null()},
		{"-a", nested.Int(-7)},
		{"a == 7", nested.Bool(true)},
		{"s == 'hi'", nested.Bool(true)},
		{"s != 'hi'", nested.Bool(false)},
		{"a < b", nested.Bool(false)},
		{"ok AND a > 1", nested.Bool(true)},
		{"NOT ok", nested.Bool(false)},
		{"ok OR a == 0", nested.Bool(true)},
		{"NULL == 1", nested.Bool(false)},
		{"a + NULL", nested.Null()},
	}
	for _, c := range cases {
		node, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%s: parse: %v", c.src, err)
			continue
		}
		e, err := compileExpr(node, schema)
		if err != nil {
			t.Errorf("%s: compile: %v", c.src, err)
			continue
		}
		got, err := e.Eval(tup)
		if err != nil {
			t.Errorf("%s: eval: %v", c.src, err)
			continue
		}
		if !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	schema := nested.NewSchema(
		nested.Field{Name: "ok", Type: nested.ScalarType(nested.KindBool)},
		nested.Field{Name: "b", Type: nested.ScalarType(nested.KindBool)},
	)
	// Right side is null; AND short-circuits on false left.
	node, _ := ParseExpr("ok AND b")
	e, err := compileExpr(node, schema)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(nested.NewTuple(nested.Bool(false), nested.Null()))
	if err != nil || !v.Equal(nested.Bool(false)) {
		t.Errorf("false AND null = %v, %v", v, err)
	}
	node, _ = ParseExpr("ok OR b")
	e, err = compileExpr(node, schema)
	if err != nil {
		t.Fatal(err)
	}
	v, err = e.Eval(nested.NewTuple(nested.Bool(true), nested.Null()))
	if err != nil || !v.Equal(nested.Bool(true)) {
		t.Errorf("true OR null = %v, %v", v, err)
	}
}

func TestFieldPathThroughNestedTuple(t *testing.T) {
	inner := nested.NewSchema(
		nested.Field{Name: "x", Type: nested.ScalarType(nested.KindInt)},
	)
	schema := nested.NewSchema(
		nested.Field{Name: "t", Type: nested.TupleType(inner)},
	)
	node, _ := ParseExpr("t.x")
	e, err := compileExpr(node, schema)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(nested.NewTuple(nested.TupleVal(nested.NewTuple(nested.Int(9)))))
	if err != nil || v.AsInt() != 9 {
		t.Errorf("t.x = %v, %v", v, err)
	}
	// Null nested tuple yields null, not an error.
	v, err = e.Eval(nested.NewTuple(nested.Null()))
	if err != nil || !v.IsNull() {
		t.Errorf("null.x = %v, %v", v, err)
	}
}

func TestPlanOperatorAccessors(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(calcBidUDF())
	plan, err := CompileSource(dealerQstate+"Ordered = ORDER InventoryBids BY Amount DESC; Top = LIMIT Ordered 1; Alias = Top; D = DISTINCT Alias; U = UNION D, Top;", dealerEnv(), reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range plan.Steps {
		if len(step.Op.Inputs()) == 0 {
			t.Errorf("step %s has no inputs", step.Target)
		}
		if step.Op.OutSchema() == nil {
			t.Errorf("step %s has no schema", step.Target)
		}
	}
}
