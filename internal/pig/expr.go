package pig

import (
	"fmt"
	"math"
	"strings"

	"lipstick/internal/nested"
)

// Expr is a compiled scalar expression evaluated against one tuple.
type Expr interface {
	// Eval computes the expression's value for the given tuple.
	Eval(t *nested.Tuple) (nested.Value, error)
	// Type is the inferred static type.
	Type() nested.Type
	// String renders the (normalized) source form.
	String() string
}

// constExpr is a literal.
type constExpr struct {
	v nested.Value
	t nested.Type
}

func (e *constExpr) Eval(*nested.Tuple) (nested.Value, error) { return e.v, nil }
func (e *constExpr) Type() nested.Type                        { return e.t }
func (e *constExpr) String() string {
	if e.v.Kind() == nested.KindString {
		return "'" + e.v.AsString() + "'"
	}
	return e.v.String()
}

// fieldExpr is a resolved field path: indexes through tuple-typed fields,
// optionally ending at any type (including a bag, which may be passed to a
// UDF but not traversed further).
type fieldExpr struct {
	path []int
	t    nested.Type
	name string
	// resolved is the schema name of the final field (used for default
	// output naming, so "$1" projects under its real column name).
	resolved string
}

func (e *fieldExpr) Eval(t *nested.Tuple) (nested.Value, error) {
	cur := t
	for i, idx := range e.path {
		if idx >= len(cur.Fields) {
			return nested.Null(), fmt.Errorf("pig: field index %d out of range (arity %d)", idx, len(cur.Fields))
		}
		v := cur.Fields[idx]
		if i == len(e.path)-1 {
			return v, nil
		}
		if v.Kind() != nested.KindTuple {
			if v.IsNull() {
				return nested.Null(), nil
			}
			return nested.Null(), fmt.Errorf("pig: cannot traverse %s value in field path %s", v.Kind(), e.name)
		}
		cur = v.AsTuple()
	}
	return nested.Null(), nil
}

func (e *fieldExpr) Type() nested.Type { return e.t }
func (e *fieldExpr) String() string    { return e.name }

// Path exposes the resolved field indexes (used by the engine for key
// extraction).
func (e *fieldExpr) Path() []int { return e.path }

// binExpr is a binary operation with the operand coercions resolved at
// compile time.
type binExpr struct {
	op          string
	left, right Expr
	t           nested.Type
}

func (e *binExpr) Type() nested.Type { return e.t }
func (e *binExpr) String() string {
	return "(" + e.left.String() + " " + e.op + " " + e.right.String() + ")"
}

func (e *binExpr) Eval(t *nested.Tuple) (nested.Value, error) {
	l, err := e.left.Eval(t)
	if err != nil {
		return nested.Null(), err
	}
	// Short-circuit booleans.
	switch e.op {
	case "AND":
		if l.Kind() == nested.KindBool && !l.AsBool() {
			return nested.Bool(false), nil
		}
		r, err := e.right.Eval(t)
		if err != nil {
			return nested.Null(), err
		}
		return boolOp(l, r, func(a, b bool) bool { return a && b })
	case "OR":
		if l.Kind() == nested.KindBool && l.AsBool() {
			return nested.Bool(true), nil
		}
		r, err := e.right.Eval(t)
		if err != nil {
			return nested.Null(), err
		}
		return boolOp(l, r, func(a, b bool) bool { return a || b })
	}
	r, err := e.right.Eval(t)
	if err != nil {
		return nested.Null(), err
	}
	switch e.op {
	case "==", "!=", "<", "<=", ">", ">=":
		return compareOp(e.op, l, r)
	case "+", "-", "*", "/", "%":
		return arithOp(e.op, l, r)
	default:
		return nested.Null(), fmt.Errorf("pig: unknown operator %q", e.op)
	}
}

func boolOp(l, r nested.Value, f func(a, b bool) bool) (nested.Value, error) {
	if l.IsNull() || r.IsNull() {
		return nested.Null(), nil
	}
	if l.Kind() != nested.KindBool || r.Kind() != nested.KindBool {
		return nested.Null(), fmt.Errorf("pig: boolean operator on %s/%s", l.Kind(), r.Kind())
	}
	return nested.Bool(f(l.AsBool(), r.AsBool())), nil
}

// compareOp evaluates comparisons; any comparison involving null is false
// (following Pig's two-valued treatment for filters).
func compareOp(op string, l, r nested.Value) (nested.Value, error) {
	if l.IsNull() || r.IsNull() {
		return nested.Bool(false), nil
	}
	c := l.Compare(r)
	switch op {
	case "==":
		return nested.Bool(c == 0), nil
	case "!=":
		return nested.Bool(c != 0), nil
	case "<":
		return nested.Bool(c < 0), nil
	case "<=":
		return nested.Bool(c <= 0), nil
	case ">":
		return nested.Bool(c > 0), nil
	case ">=":
		return nested.Bool(c >= 0), nil
	}
	return nested.Null(), fmt.Errorf("pig: unknown comparison %q", op)
}

// arithOp evaluates arithmetic; int op int stays int (with / truncating),
// mixed operands widen to float; nulls propagate.
func arithOp(op string, l, r nested.Value) (nested.Value, error) {
	if l.IsNull() || r.IsNull() {
		return nested.Null(), nil
	}
	if l.Kind() == nested.KindInt && r.Kind() == nested.KindInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return nested.Int(a + b), nil
		case "-":
			return nested.Int(a - b), nil
		case "*":
			return nested.Int(a * b), nil
		case "/":
			if b == 0 {
				return nested.Null(), nil
			}
			return nested.Int(a / b), nil
		case "%":
			if b == 0 {
				return nested.Null(), nil
			}
			return nested.Int(a % b), nil
		}
	}
	lf, lok := l.Numeric()
	rf, rok := r.Numeric()
	if !lok || !rok {
		return nested.Null(), fmt.Errorf("pig: arithmetic on %s/%s", l.Kind(), r.Kind())
	}
	switch op {
	case "+":
		return nested.Float(lf + rf), nil
	case "-":
		return nested.Float(lf - rf), nil
	case "*":
		return nested.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return nested.Null(), nil
		}
		return nested.Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return nested.Null(), nil
		}
		return nested.Float(math.Mod(lf, rf)), nil
	}
	return nested.Null(), fmt.Errorf("pig: unknown arithmetic %q", op)
}

// unaryExpr is NOT x or -x.
type unaryExpr struct {
	op  string
	arg Expr
	t   nested.Type
}

func (e *unaryExpr) Type() nested.Type { return e.t }
func (e *unaryExpr) String() string {
	if e.op == "NOT" {
		return "NOT " + e.arg.String()
	}
	return e.op + e.arg.String()
}

func (e *unaryExpr) Eval(t *nested.Tuple) (nested.Value, error) {
	v, err := e.arg.Eval(t)
	if err != nil {
		return nested.Null(), err
	}
	if v.IsNull() {
		return nested.Null(), nil
	}
	switch e.op {
	case "NOT":
		if v.Kind() != nested.KindBool {
			return nested.Null(), fmt.Errorf("pig: NOT on %s", v.Kind())
		}
		return nested.Bool(!v.AsBool()), nil
	case "-":
		switch v.Kind() {
		case nested.KindInt:
			return nested.Int(-v.AsInt()), nil
		case nested.KindFloat:
			return nested.Float(-v.AsFloat()), nil
		default:
			return nested.Null(), fmt.Errorf("pig: negation on %s", v.Kind())
		}
	}
	return nested.Null(), fmt.Errorf("pig: unknown unary %q", e.op)
}

// compileExpr resolves and type-checks an AST expression against a schema.
// UDF calls and aggregates are rejected here; FOREACH handles them as
// generate items, and they cannot appear in filters or nested expressions.
func compileExpr(node ExprNode, schema *nested.Schema) (Expr, error) {
	switch n := node.(type) {
	case *LiteralNode:
		return &constExpr{v: n.Value, t: nested.ScalarType(n.Value.Kind())}, nil
	case *FieldNode:
		return compileFieldPath(n, schema)
	case *StarNode:
		return nil, fmt.Errorf("pig: '*' is only allowed as a GENERATE item")
	case *CallNode:
		if aggNames[upper(n.Func)] {
			return nil, fmt.Errorf("pig: aggregate %s may only appear as a top-level GENERATE item", upper(n.Func))
		}
		if upper(n.Func) == "FLATTEN" {
			return nil, fmt.Errorf("pig: FLATTEN may only appear as a top-level GENERATE item")
		}
		return nil, fmt.Errorf("pig: UDF %s may only appear as a top-level GENERATE item", n.Func)
	case *UnaryNode:
		arg, err := compileExpr(n.Arg, schema)
		if err != nil {
			return nil, err
		}
		var t nested.Type
		switch n.Op {
		case "NOT":
			if !isBoolish(arg.Type()) {
				return nil, fmt.Errorf("pig: NOT requires a boolean operand, got %s", arg.Type())
			}
			t = nested.ScalarType(nested.KindBool)
		case "-":
			if !isNumeric(arg.Type()) {
				return nil, fmt.Errorf("pig: negation requires a numeric operand, got %s", arg.Type())
			}
			t = arg.Type()
		default:
			return nil, fmt.Errorf("pig: unknown unary operator %q", n.Op)
		}
		return &unaryExpr{op: n.Op, arg: arg, t: t}, nil
	case *BinaryNode:
		left, err := compileExpr(n.Left, schema)
		if err != nil {
			return nil, err
		}
		right, err := compileExpr(n.Right, schema)
		if err != nil {
			return nil, err
		}
		t, err := binaryType(n.Op, left.Type(), right.Type())
		if err != nil {
			return nil, err
		}
		return &binExpr{op: n.Op, left: left, right: right, t: t}, nil
	default:
		return nil, fmt.Errorf("pig: unsupported expression %T", node)
	}
}

// compileFieldPath resolves a dotted path against the schema, traversing
// only tuple-typed fields; the final field may have any type.
func compileFieldPath(n *FieldNode, schema *nested.Schema) (Expr, error) {
	cur := schema
	var idxs []int
	var t nested.Type
	var resolved string
	for i, step := range n.Path {
		if cur == nil {
			return nil, fmt.Errorf("pig: cannot resolve %s: no schema at step %d", n.String(), i)
		}
		var idx int
		if step.Pos >= 0 {
			if step.Pos >= cur.Arity() {
				return nil, fmt.Errorf("pig: position $%d out of range for schema %s", step.Pos, cur)
			}
			idx = step.Pos
		} else {
			idx = cur.IndexOf(step.Name)
			if idx < 0 {
				return nil, fmt.Errorf("pig: unknown field %q in schema %s", step.Name, cur)
			}
		}
		idxs = append(idxs, idx)
		t = cur.FieldType(idx)
		resolved = cur.Fields[idx].Name
		if i < len(n.Path)-1 {
			if t.Kind != nested.KindTuple {
				return nil, fmt.Errorf("pig: field %q is %s, cannot traverse into it with '.' (bags are aggregated, not dereferenced)", step.Name, t)
			}
			cur = t.Elem
		}
	}
	return &fieldExpr{path: idxs, t: t, name: n.String(), resolved: resolved}, nil
}

func binaryType(op string, l, r nested.Type) (nested.Type, error) {
	switch op {
	case "AND", "OR":
		if !isBoolish(l) || !isBoolish(r) {
			return nested.Type{}, fmt.Errorf("pig: %s requires boolean operands, got %s and %s", op, l, r)
		}
		return nested.ScalarType(nested.KindBool), nil
	case "==", "!=", "<", "<=", ">", ">=":
		if !comparable(l, r) {
			return nested.Type{}, fmt.Errorf("pig: cannot compare %s with %s", l, r)
		}
		return nested.ScalarType(nested.KindBool), nil
	case "+", "-", "*", "/", "%":
		if !isNumeric(l) || !isNumeric(r) {
			return nested.Type{}, fmt.Errorf("pig: arithmetic requires numeric operands, got %s and %s", l, r)
		}
		if l.Kind == nested.KindInt && r.Kind == nested.KindInt {
			return nested.ScalarType(nested.KindInt), nil
		}
		return nested.ScalarType(nested.KindFloat), nil
	default:
		return nested.Type{}, fmt.Errorf("pig: unknown operator %q", op)
	}
}

func isNumeric(t nested.Type) bool {
	return t.Kind == nested.KindInt || t.Kind == nested.KindFloat || t.Kind == nested.KindNull
}

func isBoolish(t nested.Type) bool {
	return t.Kind == nested.KindBool || t.Kind == nested.KindNull
}

func comparable(l, r nested.Type) bool {
	if l.Kind == nested.KindNull || r.Kind == nested.KindNull {
		return true
	}
	if isNumeric(l) && isNumeric(r) {
		return true
	}
	return l.Kind == r.Kind
}

func upper(s string) string { return strings.ToUpper(s) }
