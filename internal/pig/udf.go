package pig

import (
	"fmt"
	"strings"

	"lipstick/internal/nested"
)

// UDF is a user-defined function: a black box that takes values (scalars or
// whole bags) and returns a bag of tuples. The paper's provenance model
// treats UDFs as opaque — the output of a UDF is assumed to depend jointly
// on all of its inputs (coarse-grained provenance for the UDF portion of a
// module, Section 1).
type UDF struct {
	// Name is the function's invocation name (matched case-insensitively).
	Name string
	// OutSchema describes the tuples of the returned bag.
	OutSchema *nested.Schema
	// Fn computes the result bag from the argument values.
	Fn func(args []nested.Value) (*nested.Bag, error)
}

// Registry maps function names to UDFs.
type Registry struct {
	funcs map[string]*UDF
}

// NewRegistry returns an empty UDF registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]*UDF)}
}

// Register adds a UDF; it returns an error on duplicate names or reserved
// aggregate names.
func (r *Registry) Register(u *UDF) error {
	if u.Name == "" || u.Fn == nil || u.OutSchema == nil {
		return fmt.Errorf("pig: UDF must have a name, an output schema, and a function")
	}
	key := strings.ToUpper(u.Name)
	if _, isAgg := aggNames[key]; isAgg || key == "FLATTEN" {
		return fmt.Errorf("pig: cannot register UDF with reserved name %q", u.Name)
	}
	if _, dup := r.funcs[key]; dup {
		return fmt.Errorf("pig: UDF %q already registered", u.Name)
	}
	r.funcs[key] = u
	return nil
}

// MustRegister is Register that panics on error (for static registrations).
func (r *Registry) MustRegister(u *UDF) {
	if err := r.Register(u); err != nil {
		panic(err)
	}
}

// Lookup finds a UDF by name (case-insensitive).
func (r *Registry) Lookup(name string) (*UDF, bool) {
	if r == nil {
		return nil, false
	}
	u, ok := r.funcs[strings.ToUpper(name)]
	return u, ok
}

// Names returns the registered UDF names in unspecified order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.funcs))
	for _, u := range r.funcs {
		out = append(out, u.Name)
	}
	return out
}

// aggNames are the built-in aggregation function names of the fragment.
var aggNames = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}
