// Package pig implements the Pig Latin dialect used by Lipstick modules:
// a lexer, parser, and logical-plan compiler for the query fragment of
// Section 2.1 — FOREACH/GENERATE (projection, aggregation, UDF invocation,
// FLATTEN), FILTER BY, GROUP/COGROUP BY, JOIN, UNION, DISTINCT, ORDER, and
// LIMIT — over the nested relational data model of package nested.
//
// Programs are sequences of assignments "Name = <operator ...>;" evaluated
// against an environment of named relations; the evaluation engine lives in
// package eval.
package pig

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token kinds.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct   // = ; , ( ) . $ *
	tokCompare // == != <= >= < >
	tokArith   // + - / %
)

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// keywords are matched case-insensitively per Pig Latin convention.
var keywords = map[string]bool{
	"FOREACH": true, "GENERATE": true, "FILTER": true, "BY": true,
	"GROUP": true, "COGROUP": true, "JOIN": true, "UNION": true,
	"DISTINCT": true, "ORDER": true, "LIMIT": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "FLATTEN": true,
	"ASC": true, "DESC": true, "TRUE": true, "FALSE": true, "NULL": true,
}

// isKeyword reports whether an identifier is a reserved word, returning its
// canonical upper-case form.
func isKeyword(s string) (string, bool) {
	u := strings.ToUpper(s)
	return u, keywords[u]
}

// lexer scans Pig Latin source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse or compile error with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("pig: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace and "--" line comments.
func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(rune(c)) {
				break
			}
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		seenDot := false
		for {
			c, ok := l.peekByte()
			if !ok {
				break
			}
			if c == '.' && !seenDot {
				// A digit must follow for this to be part of the number
				// (otherwise it is a field path separator).
				if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
					seenDot = true
					l.advance()
					continue
				}
				break
			}
			if c < '0' || c > '9' {
				break
			}
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return token{}, &Error{Line: line, Col: col, Msg: "unterminated string literal"}
			}
			l.advance()
			if c == '\'' {
				return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
			}
			if c == '\\' {
				e, ok := l.peekByte()
				if !ok {
					return token{}, &Error{Line: line, Col: col, Msg: "unterminated escape"}
				}
				l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					sb.WriteByte(e)
				}
				continue
			}
			sb.WriteByte(c)
		}
	case c == '=':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return token{kind: tokCompare, text: "==", line: line, col: col}, nil
		}
		return token{kind: tokPunct, text: "=", line: line, col: col}, nil
	case c == '!' || c == '<' || c == '>':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return token{kind: tokCompare, text: string(c) + "=", line: line, col: col}, nil
		}
		if c == '!' {
			return token{}, &Error{Line: line, Col: col, Msg: "unexpected '!'"}
		}
		return token{kind: tokCompare, text: string(c), line: line, col: col}, nil
	case c == '+' || c == '-' || c == '/' || c == '%':
		l.advance()
		return token{kind: tokArith, text: string(c), line: line, col: col}, nil
	case strings.IndexByte("=;,().$*", c) >= 0:
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	default:
		return token{}, l.errorf("unexpected character %q", string(c))
	}
}

// lexAll scans the entire source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
