package pig

import (
	"strings"

	"lipstick/internal/nested"
)

// Program is a parsed Pig Latin program: an ordered list of assignments.
type Program struct {
	Stmts []*Stmt
}

// String renders the program back to (normalized) source.
func (p *Program) String() string {
	var sb strings.Builder
	for _, s := range p.Stmts {
		sb.WriteString(s.String())
		sb.WriteString(";\n")
	}
	return sb.String()
}

// Stmt is one assignment "Target = Op".
type Stmt struct {
	Target string
	Op     OpNode
	Line   int
}

// String renders the statement without the trailing semicolon.
func (s *Stmt) String() string { return s.Target + " = " + s.Op.String() }

// OpNode is a relational operator application in the AST.
type OpNode interface {
	opNode()
	String() string
}

// ForeachNode is FOREACH <Input> GENERATE item, ....
type ForeachNode struct {
	Input string
	Items []*GenItem
}

// GenItem is one GENERATE item with an optional AS alias.
type GenItem struct {
	Expr  ExprNode
	Alias string
}

// FilterNode is FILTER <Input> BY <Cond>.
type FilterNode struct {
	Input string
	Cond  ExprNode
}

// GroupNode is GROUP <Input> BY <keys>.
type GroupNode struct {
	Input string
	Keys  []ExprNode
}

// CogroupNode is COGROUP A BY k1, B BY k2, ....
type CogroupNode struct {
	Inputs []string
	Keys   [][]ExprNode
}

// JoinNode is JOIN A BY k1, B BY k2 (n-way joins are parsed and compiled as
// left-deep chains).
type JoinNode struct {
	Inputs []string
	Keys   [][]ExprNode
}

// UnionNode is UNION A, B, ....
type UnionNode struct {
	Inputs []string
}

// DistinctNode is DISTINCT <Input>.
type DistinctNode struct {
	Input string
}

// OrderNode is ORDER <Input> BY f [ASC|DESC], ....
type OrderNode struct {
	Input string
	Keys  []ExprNode
	Desc  []bool
}

// LimitNode is LIMIT <Input> <n>.
type LimitNode struct {
	Input string
	N     int64
}

// AliasNode is a plain relation copy "B = A".
type AliasNode struct {
	Input string
}

func (*ForeachNode) opNode()  {}
func (*FilterNode) opNode()   {}
func (*GroupNode) opNode()    {}
func (*CogroupNode) opNode()  {}
func (*JoinNode) opNode()     {}
func (*UnionNode) opNode()    {}
func (*DistinctNode) opNode() {}
func (*OrderNode) opNode()    {}
func (*LimitNode) opNode()    {}
func (*AliasNode) opNode()    {}

// String implements OpNode.
func (n *ForeachNode) String() string {
	items := make([]string, len(n.Items))
	for i, it := range n.Items {
		items[i] = it.Expr.String()
		if it.Alias != "" {
			items[i] += " AS " + it.Alias
		}
	}
	return "FOREACH " + n.Input + " GENERATE " + strings.Join(items, ", ")
}

// String implements OpNode.
func (n *FilterNode) String() string { return "FILTER " + n.Input + " BY " + n.Cond.String() }

// String implements OpNode.
func (n *GroupNode) String() string {
	return "GROUP " + n.Input + " BY " + exprList(n.Keys)
}

// String implements OpNode.
func (n *CogroupNode) String() string {
	parts := make([]string, len(n.Inputs))
	for i := range n.Inputs {
		parts[i] = n.Inputs[i] + " BY " + exprList(n.Keys[i])
	}
	return "COGROUP " + strings.Join(parts, ", ")
}

// String implements OpNode.
func (n *JoinNode) String() string {
	parts := make([]string, len(n.Inputs))
	for i := range n.Inputs {
		parts[i] = n.Inputs[i] + " BY " + exprList(n.Keys[i])
	}
	return "JOIN " + strings.Join(parts, ", ")
}

// String implements OpNode.
func (n *UnionNode) String() string { return "UNION " + strings.Join(n.Inputs, ", ") }

// String implements OpNode.
func (n *DistinctNode) String() string { return "DISTINCT " + n.Input }

// String implements OpNode.
func (n *OrderNode) String() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.String()
		if n.Desc[i] {
			parts[i] += " DESC"
		}
	}
	return "ORDER " + n.Input + " BY " + strings.Join(parts, ", ")
}

// String implements OpNode.
func (n *LimitNode) String() string { return "LIMIT " + n.Input + " " + itoa64(n.N) }

// String implements OpNode.
func (n *AliasNode) String() string { return n.Input }

func exprList(es []ExprNode) string {
	if len(es) == 1 {
		return es[0].String()
	}
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ExprNode is a scalar/field expression in the AST.
type ExprNode interface {
	exprNode()
	String() string
}

// LiteralNode is a constant.
type LiteralNode struct {
	Value nested.Value
}

// FieldNode is a (possibly dotted) field path such as Model, A.f1, or
// group; each component may also be positional ($0).
type FieldNode struct {
	Path []FieldStep
}

// FieldStep is one component of a field path: a name or a position.
type FieldStep struct {
	Name string
	// Pos is -1 for named steps, otherwise the positional index.
	Pos int
}

// StarNode is "*": all fields of the current tuple.
type StarNode struct{}

// CallNode is a function application: an aggregate (COUNT, SUM, ...), a
// registered UDF, or FLATTEN.
type CallNode struct {
	Func string
	Args []ExprNode
}

// UnaryNode is NOT x or -x.
type UnaryNode struct {
	Op  string
	Arg ExprNode
}

// BinaryNode is a binary operation: comparisons, AND/OR, arithmetic.
type BinaryNode struct {
	Op          string
	Left, Right ExprNode
}

func (*LiteralNode) exprNode() {}
func (*FieldNode) exprNode()   {}
func (*StarNode) exprNode()    {}
func (*CallNode) exprNode()    {}
func (*UnaryNode) exprNode()   {}
func (*BinaryNode) exprNode()  {}

// String implements ExprNode.
func (n *LiteralNode) String() string {
	if n.Value.Kind() == nested.KindString {
		return "'" + n.Value.AsString() + "'"
	}
	return n.Value.String()
}

// String implements ExprNode.
func (n *FieldNode) String() string {
	parts := make([]string, len(n.Path))
	for i, s := range n.Path {
		if s.Pos >= 0 {
			parts[i] = "$" + itoa64(int64(s.Pos))
		} else {
			parts[i] = s.Name
		}
	}
	return strings.Join(parts, ".")
}

// String implements ExprNode.
func (*StarNode) String() string { return "*" }

// String implements ExprNode.
func (n *CallNode) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return n.Func + "(" + strings.Join(args, ",") + ")"
}

// String implements ExprNode.
func (n *UnaryNode) String() string {
	if n.Op == "NOT" {
		return "NOT " + n.Arg.String()
	}
	return n.Op + n.Arg.String()
}

// String implements ExprNode.
func (n *BinaryNode) String() string {
	return "(" + n.Left.String() + " " + n.Op + " " + n.Right.String() + ")"
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
