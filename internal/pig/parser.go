package pig

import (
	"fmt"
	"strconv"
	"strings"

	"lipstick/internal/nested"
)

// Parse parses a Pig Latin program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ExprNode, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, if given;
// identifiers match case-insensitively so keywords work in any case).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		got := p.cur().text
		if p.cur().kind == tokEOF {
			got = "end of input"
		}
		return token{}, p.errorf("expected %q, found %q", text, got)
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(tokEOF, "") {
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, stmt)
	}
	return prog, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	line := p.cur().line
	target, err := p.parseIdent("relation name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &Stmt{Target: target, Op: op, Line: line}, nil
}

func (p *parser) parseIdent(what string) (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected %s, found %q", what, p.cur().text)
	}
	t := p.advance()
	if _, kw := isKeyword(t.text); kw {
		return "", &Error{Line: t.line, Col: t.col, Msg: "reserved word " + strconv.Quote(t.text) + " used as " + what}
	}
	return t.text, nil
}

func (p *parser) parseOp() (OpNode, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errorf("expected operator, found %q", t.text)
	}
	switch kw, _ := isKeyword(t.text); kw {
	case "FOREACH":
		return p.parseForeach()
	case "FILTER":
		return p.parseFilter()
	case "GROUP":
		return p.parseGroup()
	case "COGROUP":
		return p.parseCogroup()
	case "JOIN":
		return p.parseJoin()
	case "UNION":
		return p.parseUnion()
	case "DISTINCT":
		p.advance()
		in, err := p.parseIdent("relation name")
		if err != nil {
			return nil, err
		}
		return &DistinctNode{Input: in}, nil
	case "ORDER":
		return p.parseOrder()
	case "LIMIT":
		return p.parseLimit()
	default:
		// Plain alias: "B = A".
		in, err := p.parseIdent("relation name")
		if err != nil {
			return nil, err
		}
		return &AliasNode{Input: in}, nil
	}
}

func (p *parser) parseForeach() (OpNode, error) {
	p.advance() // FOREACH
	in, err := p.parseIdent("relation name")
	if err != nil {
		return nil, err
	}
	if !p.accept(tokIdent, "GENERATE") {
		return nil, p.errorf("expected GENERATE")
	}
	node := &ForeachNode{Input: in}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := &GenItem{Expr: e}
		if p.accept(tokIdent, "AS") {
			if _, isStar := e.(*StarNode); isStar {
				return nil, p.errorf("'*' cannot take an alias")
			}
			alias, err := p.parseIdent("alias")
			if err != nil {
				return nil, err
			}
			item.Alias = alias
		}
		node.Items = append(node.Items, item)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return node, nil
}

func (p *parser) parseFilter() (OpNode, error) {
	p.advance() // FILTER
	in, err := p.parseIdent("relation name")
	if err != nil {
		return nil, err
	}
	if !p.accept(tokIdent, "BY") {
		return nil, p.errorf("expected BY")
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &FilterNode{Input: in, Cond: cond}, nil
}

// parseKeyList parses a grouping/join key: one expression or a
// parenthesized list.
func (p *parser) parseKeyList() ([]ExprNode, error) {
	if p.accept(tokPunct, "(") {
		var keys []ExprNode
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			keys = append(keys, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return keys, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return []ExprNode{e}, nil
}

func (p *parser) parseGroup() (OpNode, error) {
	p.advance() // GROUP
	in, err := p.parseIdent("relation name")
	if err != nil {
		return nil, err
	}
	if !p.accept(tokIdent, "BY") {
		return nil, p.errorf("expected BY")
	}
	keys, err := p.parseKeyList()
	if err != nil {
		return nil, err
	}
	return &GroupNode{Input: in, Keys: keys}, nil
}

// parseByPairs parses "A BY k1, B BY k2, ..." for COGROUP and JOIN.
func (p *parser) parseByPairs(minInputs int, what string) ([]string, [][]ExprNode, error) {
	var inputs []string
	var keys [][]ExprNode
	for {
		in, err := p.parseIdent("relation name")
		if err != nil {
			return nil, nil, err
		}
		if !p.accept(tokIdent, "BY") {
			return nil, nil, p.errorf("expected BY")
		}
		ks, err := p.parseKeyList()
		if err != nil {
			return nil, nil, err
		}
		inputs = append(inputs, in)
		keys = append(keys, ks)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if len(inputs) < minInputs {
		return nil, nil, p.errorf("%s requires at least %d inputs", what, minInputs)
	}
	for i := 1; i < len(keys); i++ {
		if len(keys[i]) != len(keys[0]) {
			return nil, nil, p.errorf("%s key lists must have equal length", what)
		}
	}
	return inputs, keys, nil
}

func (p *parser) parseCogroup() (OpNode, error) {
	p.advance() // COGROUP
	inputs, keys, err := p.parseByPairs(1, "COGROUP")
	if err != nil {
		return nil, err
	}
	return &CogroupNode{Inputs: inputs, Keys: keys}, nil
}

func (p *parser) parseJoin() (OpNode, error) {
	p.advance() // JOIN
	inputs, keys, err := p.parseByPairs(2, "JOIN")
	if err != nil {
		return nil, err
	}
	return &JoinNode{Inputs: inputs, Keys: keys}, nil
}

func (p *parser) parseUnion() (OpNode, error) {
	p.advance() // UNION
	var inputs []string
	for {
		in, err := p.parseIdent("relation name")
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, in)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if len(inputs) < 2 {
		return nil, p.errorf("UNION requires at least 2 inputs")
	}
	return &UnionNode{Inputs: inputs}, nil
}

func (p *parser) parseOrder() (OpNode, error) {
	p.advance() // ORDER
	in, err := p.parseIdent("relation name")
	if err != nil {
		return nil, err
	}
	if !p.accept(tokIdent, "BY") {
		return nil, p.errorf("expected BY")
	}
	node := &OrderNode{Input: in}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		desc := false
		if p.accept(tokIdent, "DESC") {
			desc = true
		} else {
			p.accept(tokIdent, "ASC")
		}
		node.Keys = append(node.Keys, e)
		node.Desc = append(node.Desc, desc)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return node, nil
}

func (p *parser) parseLimit() (OpNode, error) {
	p.advance() // LIMIT
	in, err := p.parseIdent("relation name")
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokNumber {
		return nil, p.errorf("expected limit count")
	}
	n, err := strconv.ParseInt(p.advance().text, 10, 64)
	if err != nil || n < 0 {
		return nil, p.errorf("invalid limit count")
	}
	return &LimitNode{Input: in, N: n}, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := or
//	or      := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | cmp
//	cmp     := add (op add)?          op ∈ {==,!=,<,<=,>,>=}
//	add     := mul (('+'|'-') mul)*
//	mul     := unary (('*'|'/'|'%') unary)*
//	unary   := '-' unary | primary
//	primary := literal | field | call | '(' expr ')' | '*' | '$'n
func (p *parser) parseExpr() (ExprNode, error) { return p.parseOr() }

func (p *parser) parseOr() (ExprNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryNode{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (ExprNode, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryNode{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (ExprNode, error) {
	if p.accept(tokIdent, "NOT") {
		arg, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryNode{Op: "NOT", Arg: arg}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (ExprNode, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokCompare {
		op := p.advance().text
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryNode{Op: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (ExprNode, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokArith && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.advance().text
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinaryNode{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMul() (ExprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(tokPunct, "*"):
			op = "*"
		case p.cur().kind == tokArith && (p.cur().text == "/" || p.cur().text == "%"):
			op = p.cur().text
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryNode{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (ExprNode, error) {
	if p.cur().kind == tokArith && p.cur().text == "-" {
		p.advance()
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := arg.(*LiteralNode); ok {
			switch lit.Value.Kind() {
			case nested.KindInt:
				return &LiteralNode{Value: nested.Int(-lit.Value.AsInt())}, nil
			case nested.KindFloat:
				return &LiteralNode{Value: nested.Float(-lit.Value.AsFloat())}, nil
			}
		}
		return &UnaryNode{Op: "-", Arg: arg}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ExprNode, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.text)
			}
			return &LiteralNode{Value: nested.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.text)
		}
		return &LiteralNode{Value: nested.Int(n)}, nil
	case t.kind == tokString:
		p.advance()
		return &LiteralNode{Value: nested.Str(t.text)}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "*":
		p.advance()
		return &StarNode{}, nil
	case t.kind == tokPunct && t.text == "$":
		return p.parseFieldPath()
	case t.kind == tokIdent:
		switch kw, isKw := isKeyword(t.text); {
		case isKw && kw == "TRUE":
			p.advance()
			return &LiteralNode{Value: nested.Bool(true)}, nil
		case isKw && kw == "FALSE":
			p.advance()
			return &LiteralNode{Value: nested.Bool(false)}, nil
		case isKw && kw == "NULL":
			p.advance()
			return &LiteralNode{Value: nested.Null()}, nil
		case isKw && kw == "FLATTEN":
			p.advance()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return &CallNode{Func: "FLATTEN", Args: []ExprNode{arg}}, nil
		case isKw && kw == "GROUP":
			// "group" is the field name GROUP/COGROUP produce; in
			// expression position it is an ordinary field reference.
			return p.parseFieldPath()
		case isKw:
			return nil, p.errorf("unexpected keyword %q in expression", t.text)
		}
		// Function call or field path.
		if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			name := p.advance().text
			p.advance() // (
			var args []ExprNode
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return &CallNode{Func: name, Args: args}, nil
		}
		return p.parseFieldPath()
	default:
		return nil, p.errorf("unexpected token %q in expression", t.text)
	}
}

// parseFieldPath parses name(.name | .$n)* or $n(.name | .$n)*.
func (p *parser) parseFieldPath() (ExprNode, error) {
	var path []FieldStep
	step, err := p.parseFieldStep()
	if err != nil {
		return nil, err
	}
	path = append(path, step)
	for p.accept(tokPunct, ".") {
		step, err := p.parseFieldStep()
		if err != nil {
			return nil, err
		}
		path = append(path, step)
	}
	return &FieldNode{Path: path}, nil
}

func (p *parser) parseFieldStep() (FieldStep, error) {
	if p.accept(tokPunct, "$") {
		if p.cur().kind != tokNumber {
			return FieldStep{}, p.errorf("expected field position after $")
		}
		n, err := strconv.Atoi(p.advance().text)
		if err != nil {
			return FieldStep{}, p.errorf("invalid field position")
		}
		return FieldStep{Pos: n}, nil
	}
	if p.cur().kind != tokIdent {
		return FieldStep{}, p.errorf("expected field name, found %q", p.cur().text)
	}
	t := p.advance()
	// "group" is a schema name produced by GROUP/COGROUP, not reserved.
	return FieldStep{Name: t.text, Pos: -1}, nil
}
