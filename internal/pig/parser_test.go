package pig

import (
	"strings"
	"testing"

	"lipstick/internal/nested"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll("A = FILTER B BY x >= 2.5 AND name == 'it''s'; -- comment\nC = DISTINCT A;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
	// Spot checks.
	if toks[0].text != "A" || toks[0].kind != tokIdent {
		t.Errorf("tok0 = %+v", toks[0])
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokCompare && tk.text == ">=" {
			found = true
		}
	}
	if !found {
		t.Error(">= not lexed")
	}
	_ = kinds
}

func TestLexerStringEscapes(t *testing.T) {
	toks, err := lexAll(`A = FILTER B BY x == 'a\'b\n';`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if tk.kind == tokString {
			if tk.text != "a'b\n" {
				t.Errorf("string = %q", tk.text)
			}
			return
		}
	}
	t.Fatal("no string token found")
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("A = 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lexAll("A = #"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lexAll("A = x ! y"); err == nil {
		t.Error("lone ! accepted")
	}
}

func TestLexerNumberVsFieldDot(t *testing.T) {
	toks, err := lexAll("2.5 A.f 3.f")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNumber || toks[0].text != "2.5" {
		t.Errorf("float literal mislexed: %+v", toks[0])
	}
	// "3.f" must lex as number 3, dot, ident f.
	if toks[4].text != "3" || toks[5].text != "." || toks[6].text != "f" {
		t.Errorf("3.f mislexed: %+v %+v %+v", toks[4], toks[5], toks[6])
	}
}

// TestParseDealerProgram parses the paper's M_dealer state-manipulation
// query (Section 2.2, Example 2.1) verbatim (modulo whitespace).
func TestParseDealerProgram(t *testing.T) {
	src := `
ReqModel = FOREACH Requests GENERATE Model;
Inventory = JOIN Cars BY Model, ReqModel BY Model;
SoldInventory = JOIN Inventory BY CarId, SoldCars BY CarId;
CarsByModel = GROUP Inventory BY Model;
SoldByModel = GROUP SoldInventory BY Model;
NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
NumSoldByModel = FOREACH SoldByModel GENERATE group AS Model, COUNT(SoldInventory) AS NumSold;
AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model, NumSoldByModel BY Model;
InventoryBids = FOREACH AllInfoByModel GENERATE FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel));
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 9 {
		t.Fatalf("statements = %d, want 9", len(prog.Stmts))
	}
	if prog.Stmts[0].Target != "ReqModel" {
		t.Error("first target wrong")
	}
	join, ok := prog.Stmts[1].Op.(*JoinNode)
	if !ok || len(join.Inputs) != 2 || join.Inputs[0] != "Cars" {
		t.Errorf("join parse wrong: %+v", prog.Stmts[1].Op)
	}
	cg, ok := prog.Stmts[7].Op.(*CogroupNode)
	if !ok || len(cg.Inputs) != 3 {
		t.Errorf("cogroup parse wrong: %+v", prog.Stmts[7].Op)
	}
	fe, ok := prog.Stmts[8].Op.(*ForeachNode)
	if !ok {
		t.Fatal("last statement not FOREACH")
	}
	call, ok := fe.Items[0].Expr.(*CallNode)
	if !ok || upper(call.Func) != "FLATTEN" {
		t.Errorf("FLATTEN parse wrong: %+v", fe.Items[0].Expr)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"B = FOREACH A GENERATE Model, Price AS p;",
		"B = FILTER A BY ((Price <= 20000) AND (Model == 'Civic'));",
		"B = GROUP A BY Model;",
		"B = GROUP A BY (Model, Year);",
		"B = COGROUP A BY k, C BY k;",
		"B = JOIN A BY f1, C BY f2;",
		"B = UNION A, C, D;",
		"B = DISTINCT A;",
		"B = ORDER A BY Price DESC, Model;",
		"B = LIMIT A 10;",
		"B = A;",
		"B = FOREACH A GENERATE *;",
		"B = FOREACH A GENERATE $0, $1.f;",
		"B = FOREACH A GENERATE COUNT(X) AS n, SUM(X.v) AS s;",
		"B = FOREACH A GENERATE FLATTEN(Items);",
		"B = FILTER A BY (NOT (x == 1) OR (y != 2));",
		"B = FILTER A BY ((x + (y * 2)) > (z % 3));",
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		printed := strings.TrimSpace(prog.String())
		re, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q failed: %v", printed, err)
			continue
		}
		if strings.TrimSpace(re.String()) != printed {
			t.Errorf("round-trip unstable:\n  1st: %s\n  2nd: %s", printed, strings.TrimSpace(re.String()))
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"B = ;",
		"B FOREACH A GENERATE x;",
		"B = FOREACH A x;",
		"B = FILTER A x == 1;",
		"B = GROUP A;",
		"B = JOIN A BY x;",
		"B = UNION A;",
		"B = LIMIT A;",
		"B = LIMIT A x;",
		"B = FOREACH A GENERATE x AS;",
		"B = FOREACH A GENERATE (x;",
		"B = FOREACH A GENERATE * AS y;",
		"FOREACH = DISTINCT A;",
		"B = FOREACH A GENERATE x", /* missing ; */
		"B = JOIN A BY (x, y), C BY x;",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c == d AND NOT e OR f")
	if err != nil {
		t.Fatal(err)
	}
	// Expect: OR( AND( ==( +(a, *(b,c)), d), NOT e), f)
	or, ok := e.(*BinaryNode)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", e)
	}
	and, ok := or.Left.(*BinaryNode)
	if !ok || and.Op != "AND" {
		t.Fatalf("left = %v", or.Left)
	}
	cmp, ok := and.Left.(*BinaryNode)
	if !ok || cmp.Op != "==" {
		t.Fatalf("cmp = %v", and.Left)
	}
	add, ok := cmp.Left.(*BinaryNode)
	if !ok || add.Op != "+" {
		t.Fatalf("add = %v", cmp.Left)
	}
	mul, ok := add.Right.(*BinaryNode)
	if !ok || mul.Op != "*" {
		t.Fatalf("mul = %v", add.Right)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*LiteralNode)
	if !ok || lit.Value.AsInt() != -5 {
		t.Errorf("-5 = %v", e)
	}
	e, err = ParseExpr("-2.5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok = e.(*LiteralNode)
	if !ok || lit.Value.AsFloat() != -2.5 {
		t.Errorf("-2.5 = %v", e)
	}
}

func TestParseLiterals(t *testing.T) {
	for src, want := range map[string]nested.Value{
		"TRUE":  nested.Bool(true),
		"false": nested.Bool(false),
		"NULL":  nested.Null(),
		"42":    nested.Int(42),
		"'hi'":  nested.Str("hi"),
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		lit, ok := e.(*LiteralNode)
		if !ok || !lit.Value.Equal(want) {
			t.Errorf("%s = %v, want %v", src, e, want)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	prog, err := Parse("b = foreach A generate x; c = filter b by x > 1;")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 2 {
		t.Error("lower-case keywords not accepted")
	}
}

func TestReservedWordAsTarget(t *testing.T) {
	if _, err := Parse("GROUP = DISTINCT A;"); err == nil {
		t.Error("reserved word as target should fail")
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Parse("B = FOREACH A\nGENERATE ;")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("error text %q lacks position", pe.Error())
	}
}
