package pig

import (
	"fmt"

	"lipstick/internal/nested"
	"lipstick/internal/semiring"
)

// Plan is a compiled Pig Latin program: an ordered list of operator steps
// with all field references resolved and output schemas inferred.
type Plan struct {
	Steps []Step
	// Schemas holds the schema of every relation visible after the plan:
	// the environment relations plus every intermediate target.
	Schemas nested.RelationSchemas
	// Source is the normalized program text.
	Source string
}

// Step assigns the result of an operator to a named relation.
type Step struct {
	Target string
	Op     Operator
}

// Operator is a compiled relational operator.
type Operator interface {
	operator()
	// Inputs lists the input relation names.
	Inputs() []string
	// OutSchema is the inferred schema of the result.
	OutSchema() *nested.Schema
}

// ItemKind classifies a compiled GENERATE item.
type ItemKind uint8

const (
	// ItemExpr is a plain scalar expression (projection or computation).
	ItemExpr ItemKind = iota
	// ItemStar expands all fields of the input tuple.
	ItemStar
	// ItemAgg is an aggregate over a bag-typed field.
	ItemAgg
	// ItemUDF is a user-defined function call (returns a bag; without
	// FLATTEN the bag itself becomes the field value).
	ItemUDF
	// ItemFlattenBag splices the tuples of a bag-typed field.
	ItemFlattenBag
	// ItemFlattenUDF splices the tuples returned by a UDF call.
	ItemFlattenUDF
)

// Item is one compiled GENERATE item.
type Item struct {
	Kind ItemKind
	// Expr is the scalar expression for ItemExpr.
	Expr Expr
	// BagPath locates the bag field for ItemAgg/ItemFlattenBag (tuple
	// steps, last index is the bag field).
	BagPath []int
	// InnerIdx is the aggregated field inside the bag (-1 = whole tuple,
	// used by COUNT).
	InnerIdx int
	// AggOp is the aggregation operation for ItemAgg.
	AggOp semiring.AggOp
	// UDF is the function for ItemUDF/ItemFlattenUDF.
	UDF *UDF
	// Args are the UDF argument expressions.
	Args []Expr
	// Names are the output field names this item contributes (one for
	// scalar items; several for star/flatten).
	Names []string
	// Types are the matching output field types.
	Types []nested.Type
}

// ForeachOp is a compiled FOREACH ... GENERATE.
type ForeachOp struct {
	Input  string
	Items  []Item
	In     *nested.Schema
	Out    *nested.Schema
	HasAgg bool
	// HasFlatten reports whether any item splices bags.
	HasFlatten bool
}

// FilterOp is a compiled FILTER ... BY.
type FilterOp struct {
	Input string
	Cond  Expr
	In    *nested.Schema
}

// GroupOp is a compiled GROUP ... BY.
type GroupOp struct {
	Input string
	Keys  []Expr
	In    *nested.Schema
	Out   *nested.Schema
}

// CogroupOp is a compiled COGROUP.
type CogroupOp struct {
	InputNames []string
	Keys       [][]Expr
	Ins        []*nested.Schema
	Out        *nested.Schema
}

// JoinOp is a compiled (n-way) equality JOIN.
type JoinOp struct {
	InputNames []string
	Keys       [][]Expr
	Ins        []*nested.Schema
	Out        *nested.Schema
}

// UnionOp is a compiled UNION.
type UnionOp struct {
	InputNames []string
	Out        *nested.Schema
}

// DistinctOp is a compiled DISTINCT.
type DistinctOp struct {
	Input string
	In    *nested.Schema
}

// OrderOp is a compiled ORDER ... BY.
type OrderOp struct {
	Input string
	Keys  []Expr
	Desc  []bool
	In    *nested.Schema
}

// LimitOp is a compiled LIMIT.
type LimitOp struct {
	Input string
	N     int64
	In    *nested.Schema
}

// AliasOp is a compiled relation copy.
type AliasOp struct {
	Input string
	In    *nested.Schema
}

func (*ForeachOp) operator()  {}
func (*FilterOp) operator()   {}
func (*GroupOp) operator()    {}
func (*CogroupOp) operator()  {}
func (*JoinOp) operator()     {}
func (*UnionOp) operator()    {}
func (*DistinctOp) operator() {}
func (*OrderOp) operator()    {}
func (*LimitOp) operator()    {}
func (*AliasOp) operator()    {}

// Inputs implements Operator.
func (o *ForeachOp) Inputs() []string { return []string{o.Input} }

// Inputs implements Operator.
func (o *FilterOp) Inputs() []string { return []string{o.Input} }

// Inputs implements Operator.
func (o *GroupOp) Inputs() []string { return []string{o.Input} }

// Inputs implements Operator.
func (o *CogroupOp) Inputs() []string { return o.InputNames }

// Inputs implements Operator.
func (o *JoinOp) Inputs() []string { return o.InputNames }

// Inputs implements Operator.
func (o *UnionOp) Inputs() []string { return o.InputNames }

// Inputs implements Operator.
func (o *DistinctOp) Inputs() []string { return []string{o.Input} }

// Inputs implements Operator.
func (o *OrderOp) Inputs() []string { return []string{o.Input} }

// Inputs implements Operator.
func (o *LimitOp) Inputs() []string { return []string{o.Input} }

// Inputs implements Operator.
func (o *AliasOp) Inputs() []string { return []string{o.Input} }

// OutSchema implements Operator.
func (o *ForeachOp) OutSchema() *nested.Schema { return o.Out }

// OutSchema implements Operator.
func (o *FilterOp) OutSchema() *nested.Schema { return o.In }

// OutSchema implements Operator.
func (o *GroupOp) OutSchema() *nested.Schema { return o.Out }

// OutSchema implements Operator.
func (o *CogroupOp) OutSchema() *nested.Schema { return o.Out }

// OutSchema implements Operator.
func (o *JoinOp) OutSchema() *nested.Schema { return o.Out }

// OutSchema implements Operator.
func (o *UnionOp) OutSchema() *nested.Schema { return o.Out }

// OutSchema implements Operator.
func (o *DistinctOp) OutSchema() *nested.Schema { return o.In }

// OutSchema implements Operator.
func (o *OrderOp) OutSchema() *nested.Schema { return o.In }

// OutSchema implements Operator.
func (o *LimitOp) OutSchema() *nested.Schema { return o.In }

// OutSchema implements Operator.
func (o *AliasOp) OutSchema() *nested.Schema { return o.In }

// Compile type-checks a parsed program against the schemas of its input
// relations and resolves every operator. reg may be nil when the program
// uses no UDFs.
func Compile(prog *Program, env nested.RelationSchemas, reg *Registry) (*Plan, error) {
	plan := &Plan{Schemas: env.Clone(), Source: prog.String()}
	c := &compiler{schemas: plan.Schemas, reg: reg}
	for _, stmt := range prog.Stmts {
		op, err := c.compileStmt(stmt)
		if err != nil {
			return nil, err
		}
		plan.Steps = append(plan.Steps, Step{Target: stmt.Target, Op: op})
		plan.Schemas[stmt.Target] = op.OutSchema()
	}
	return plan, nil
}

// CompileSource parses and compiles in one call.
func CompileSource(src string, env nested.RelationSchemas, reg *Registry) (*Plan, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, env, reg)
}

type compiler struct {
	schemas nested.RelationSchemas
	reg     *Registry
}

func (c *compiler) schemaOf(name string, line int) (*nested.Schema, error) {
	s, ok := c.schemas[name]
	if !ok {
		return nil, &Error{Line: line, Msg: fmt.Sprintf("unknown relation %q", name)}
	}
	return s, nil
}

func (c *compiler) compileStmt(stmt *Stmt) (Operator, error) {
	switch n := stmt.Op.(type) {
	case *ForeachNode:
		return c.compileForeach(n, stmt.Line)
	case *FilterNode:
		in, err := c.schemaOf(n.Input, stmt.Line)
		if err != nil {
			return nil, err
		}
		cond, err := compileExpr(n.Cond, in)
		if err != nil {
			return nil, err
		}
		if !isBoolish(cond.Type()) {
			return nil, &Error{Line: stmt.Line, Msg: fmt.Sprintf("FILTER condition must be boolean, got %s", cond.Type())}
		}
		return &FilterOp{Input: n.Input, Cond: cond, In: in}, nil
	case *GroupNode:
		return c.compileGroup(n, stmt.Line)
	case *CogroupNode:
		return c.compileCogroup(n, stmt.Line)
	case *JoinNode:
		return c.compileJoin(n, stmt.Line)
	case *UnionNode:
		return c.compileUnion(n, stmt.Line)
	case *DistinctNode:
		in, err := c.schemaOf(n.Input, stmt.Line)
		if err != nil {
			return nil, err
		}
		return &DistinctOp{Input: n.Input, In: in}, nil
	case *OrderNode:
		in, err := c.schemaOf(n.Input, stmt.Line)
		if err != nil {
			return nil, err
		}
		op := &OrderOp{Input: n.Input, In: in, Desc: n.Desc}
		for _, k := range n.Keys {
			e, err := compileExpr(k, in)
			if err != nil {
				return nil, err
			}
			op.Keys = append(op.Keys, e)
		}
		return op, nil
	case *LimitNode:
		in, err := c.schemaOf(n.Input, stmt.Line)
		if err != nil {
			return nil, err
		}
		return &LimitOp{Input: n.Input, N: n.N, In: in}, nil
	case *AliasNode:
		in, err := c.schemaOf(n.Input, stmt.Line)
		if err != nil {
			return nil, err
		}
		return &AliasOp{Input: n.Input, In: in}, nil
	default:
		return nil, &Error{Line: stmt.Line, Msg: fmt.Sprintf("unsupported operator %T", stmt.Op)}
	}
}

func (c *compiler) compileGroup(n *GroupNode, line int) (Operator, error) {
	in, err := c.schemaOf(n.Input, line)
	if err != nil {
		return nil, err
	}
	op := &GroupOp{Input: n.Input, In: in}
	for _, k := range n.Keys {
		e, err := compileExpr(k, in)
		if err != nil {
			return nil, err
		}
		op.Keys = append(op.Keys, e)
	}
	op.Out = groupedSchema(op.Keys, []string{n.Input}, []*nested.Schema{in})
	return op, nil
}

func (c *compiler) compileCogroup(n *CogroupNode, line int) (Operator, error) {
	op := &CogroupOp{InputNames: n.Inputs}
	for i, name := range n.Inputs {
		in, err := c.schemaOf(name, line)
		if err != nil {
			return nil, err
		}
		op.Ins = append(op.Ins, in)
		var keys []Expr
		for _, k := range n.Keys[i] {
			e, err := compileExpr(k, in)
			if err != nil {
				return nil, err
			}
			keys = append(keys, e)
		}
		op.Keys = append(op.Keys, keys)
	}
	if err := checkKeyCompat(op.Keys, line); err != nil {
		return nil, err
	}
	op.Out = groupedSchema(op.Keys[0], n.Inputs, op.Ins)
	return op, nil
}

// groupedSchema builds the (group, <rel1>: bag, <rel2>: bag, ...) schema of
// GROUP/COGROUP: the first field holds the (possibly composite) key, and
// one bag field per input holds the grouped tuples, named after the input
// relation as in Pig.
func groupedSchema(keys []Expr, names []string, ins []*nested.Schema) *nested.Schema {
	var groupType nested.Type
	if len(keys) == 1 {
		groupType = keys[0].Type()
	} else {
		inner := &nested.Schema{}
		for i, k := range keys {
			inner.Fields = append(inner.Fields, nested.Field{Name: fmt.Sprintf("k%d", i), Type: k.Type()})
		}
		groupType = nested.TupleType(inner)
	}
	out := nested.NewSchema(nested.Field{Name: "group", Type: groupType})
	for i, name := range names {
		out.Fields = append(out.Fields, nested.Field{Name: name, Type: nested.BagType(ins[i])})
	}
	return out
}

func (c *compiler) compileJoin(n *JoinNode, line int) (Operator, error) {
	op := &JoinOp{InputNames: n.Inputs}
	for i, name := range n.Inputs {
		in, err := c.schemaOf(name, line)
		if err != nil {
			return nil, err
		}
		op.Ins = append(op.Ins, in)
		var keys []Expr
		for _, k := range n.Keys[i] {
			e, err := compileExpr(k, in)
			if err != nil {
				return nil, err
			}
			keys = append(keys, e)
		}
		op.Keys = append(op.Keys, keys)
	}
	if err := checkKeyCompat(op.Keys, line); err != nil {
		return nil, err
	}
	// Output schema: concatenation with fields qualified "rel::field"
	// (a Pig join produces both key columns, Section 2.2's example).
	out := &nested.Schema{}
	for i, name := range n.Inputs {
		for _, f := range op.Ins[i].Fields {
			out.Fields = append(out.Fields, nested.Field{Name: name + "::" + f.Name, Type: f.Type})
		}
	}
	op.Out = out
	return op, nil
}

func checkKeyCompat(keys [][]Expr, line int) error {
	for i := 1; i < len(keys); i++ {
		for j := range keys[i] {
			a, b := keys[0][j].Type(), keys[i][j].Type()
			if !comparable(a, b) {
				return &Error{Line: line, Msg: fmt.Sprintf("key %d types %s and %s are not comparable", j, a, b)}
			}
		}
	}
	return nil
}

func (c *compiler) compileUnion(n *UnionNode, line int) (Operator, error) {
	op := &UnionOp{InputNames: n.Inputs}
	var first *nested.Schema
	for i, name := range n.Inputs {
		in, err := c.schemaOf(name, line)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = in
			continue
		}
		if in.Arity() != first.Arity() {
			return nil, &Error{Line: line, Msg: fmt.Sprintf("UNION inputs %q and %q have different arities", n.Inputs[0], name)}
		}
		for j := range in.Fields {
			if !in.Fields[j].Type.Equal(first.Fields[j].Type) {
				return nil, &Error{Line: line, Msg: fmt.Sprintf("UNION field %d type mismatch: %s vs %s", j, first.Fields[j].Type, in.Fields[j].Type)}
			}
		}
	}
	op.Out = first
	return op, nil
}

func (c *compiler) compileForeach(n *ForeachNode, line int) (Operator, error) {
	in, err := c.schemaOf(n.Input, line)
	if err != nil {
		return nil, err
	}
	op := &ForeachOp{Input: n.Input, In: in}
	for i, gi := range n.Items {
		item, err := c.compileItem(gi, in, i, line)
		if err != nil {
			return nil, err
		}
		if item.Kind == ItemAgg {
			op.HasAgg = true
		}
		if item.Kind == ItemFlattenBag || item.Kind == ItemFlattenUDF {
			op.HasFlatten = true
		}
		op.Items = append(op.Items, item)
	}
	if op.HasAgg && op.HasFlatten {
		return nil, &Error{Line: line, Msg: "FOREACH cannot mix aggregation and FLATTEN in one GENERATE"}
	}
	out := &nested.Schema{}
	for _, item := range op.Items {
		for j := range item.Names {
			out.Fields = append(out.Fields, nested.Field{Name: item.Names[j], Type: item.Types[j]})
		}
	}
	seen := map[string]bool{}
	for _, f := range out.Fields {
		if seen[f.Name] {
			return nil, &Error{Line: line, Msg: fmt.Sprintf("duplicate output field %q in GENERATE (use AS to rename)", f.Name)}
		}
		seen[f.Name] = true
	}
	op.Out = out
	return op, nil
}

func (c *compiler) compileItem(gi *GenItem, in *nested.Schema, pos, line int) (Item, error) {
	switch e := gi.Expr.(type) {
	case *StarNode:
		item := Item{Kind: ItemStar}
		for _, f := range in.Fields {
			item.Names = append(item.Names, f.Name)
			item.Types = append(item.Types, f.Type)
		}
		if gi.Alias != "" {
			return Item{}, &Error{Line: line, Msg: "'*' cannot take an alias"}
		}
		return item, nil
	case *CallNode:
		name := upper(e.Func)
		if aggNames[name] {
			return c.compileAggItem(e, gi.Alias, in, line)
		}
		if name == "FLATTEN" {
			return c.compileFlattenItem(e, gi.Alias, in, line)
		}
		return c.compileUDFItem(e, gi.Alias, in, false, line)
	default:
		expr, err := compileExpr(gi.Expr, in)
		if err != nil {
			return Item{}, err
		}
		name := gi.Alias
		if name == "" {
			if fe, ok := expr.(*fieldExpr); ok {
				name = fe.resolved
			} else {
				name = fmt.Sprintf("f%d", pos)
			}
		}
		return Item{Kind: ItemExpr, Expr: expr, Names: []string{name}, Types: []nested.Type{expr.Type()}}, nil
	}
}

// compileAggItem resolves COUNT(bag) / SUM(bag.field) / etc.
func (c *compiler) compileAggItem(call *CallNode, alias string, in *nested.Schema, line int) (Item, error) {
	aggOp, _ := semiring.ParseAggOp(call.Func)
	if len(call.Args) != 1 {
		return Item{}, &Error{Line: line, Msg: fmt.Sprintf("%s takes exactly one argument", aggOp)}
	}
	fn, ok := call.Args[0].(*FieldNode)
	if !ok {
		return Item{}, &Error{Line: line, Msg: fmt.Sprintf("%s argument must be a bag-valued field path", aggOp)}
	}
	bagPath, innerIdx, innerType, err := resolveAggPath(fn, in)
	if err != nil {
		return Item{}, &Error{Line: line, Msg: err.Error()}
	}
	var t nested.Type
	switch aggOp {
	case semiring.AggCount:
		t = nested.ScalarType(nested.KindInt)
		innerIdx = -1
	case semiring.AggAvg:
		t = nested.ScalarType(nested.KindFloat)
	default:
		if innerIdx < 0 {
			return Item{}, &Error{Line: line, Msg: fmt.Sprintf("%s requires a field to aggregate", aggOp)}
		}
		t = innerType
	}
	if aggOp != semiring.AggCount && innerIdx >= 0 && !isNumeric(innerType) {
		return Item{}, &Error{Line: line, Msg: fmt.Sprintf("%s over non-numeric field (%s)", aggOp, innerType)}
	}
	name := alias
	if name == "" {
		name = aggOp.String()
	}
	return Item{
		Kind: ItemAgg, BagPath: bagPath, InnerIdx: innerIdx, AggOp: aggOp,
		Names: []string{name}, Types: []nested.Type{t},
	}, nil
}

// resolveAggPath resolves an aggregate argument: tuple steps to a
// bag-typed field, optionally one step into the bag's tuples. A bag whose
// tuples have a single field defaults to that field (the paper: arithmetic
// "applied to a relation with a single attribute" aggregates it).
func resolveAggPath(fn *FieldNode, in *nested.Schema) (bagPath []int, innerIdx int, innerType nested.Type, err error) {
	cur := in
	innerIdx = -1
	for i, step := range fn.Path {
		var idx int
		if step.Pos >= 0 {
			if step.Pos >= cur.Arity() {
				return nil, 0, nested.Type{}, fmt.Errorf("pig: position $%d out of range", step.Pos)
			}
			idx = step.Pos
		} else {
			idx = cur.IndexOf(step.Name)
			if idx < 0 {
				return nil, 0, nested.Type{}, fmt.Errorf("pig: unknown field %q in schema %s", step.Name, cur)
			}
		}
		t := cur.FieldType(idx)
		switch t.Kind {
		case nested.KindTuple:
			bagPath = append(bagPath, idx)
			cur = t.Elem
		case nested.KindBag:
			bagPath = append(bagPath, idx)
			inner := t.Elem
			switch rest := fn.Path[i+1:]; len(rest) {
			case 0:
				if inner != nil && inner.Arity() == 1 {
					innerIdx = 0
					innerType = inner.FieldType(0)
				}
				return bagPath, innerIdx, innerType, nil
			case 1:
				var j int
				if rest[0].Pos >= 0 {
					j = rest[0].Pos
					if inner == nil || j >= inner.Arity() {
						return nil, 0, nested.Type{}, fmt.Errorf("pig: position $%d out of range in bag", rest[0].Pos)
					}
				} else {
					j = inner.IndexOf(rest[0].Name)
					if j < 0 {
						return nil, 0, nested.Type{}, fmt.Errorf("pig: unknown field %q inside bag", rest[0].Name)
					}
				}
				return bagPath, j, inner.FieldType(j), nil
			default:
				return nil, 0, nested.Type{}, fmt.Errorf("pig: aggregate path may descend at most one level into a bag")
			}
		default:
			return nil, 0, nested.Type{}, fmt.Errorf("pig: aggregate argument %s does not reach a bag", fn)
		}
	}
	return nil, 0, nested.Type{}, fmt.Errorf("pig: aggregate argument %s does not reach a bag", fn)
}

func (c *compiler) compileUDFItem(call *CallNode, alias string, in *nested.Schema, flatten bool, line int) (Item, error) {
	udf, ok := c.reg.Lookup(call.Func)
	if !ok {
		return Item{}, &Error{Line: line, Msg: fmt.Sprintf("unknown function %q (not an aggregate and not a registered UDF)", call.Func)}
	}
	item := Item{UDF: udf}
	for _, a := range call.Args {
		e, err := compileExpr(a, in)
		if err != nil {
			return Item{}, err
		}
		item.Args = append(item.Args, e)
	}
	if flatten {
		item.Kind = ItemFlattenUDF
		for _, f := range udf.OutSchema.Fields {
			item.Names = append(item.Names, f.Name)
			item.Types = append(item.Types, f.Type)
		}
		return item, nil
	}
	item.Kind = ItemUDF
	name := alias
	if name == "" {
		name = udf.Name
	}
	item.Names = []string{name}
	item.Types = []nested.Type{nested.BagType(udf.OutSchema)}
	return item, nil
}

func (c *compiler) compileFlattenItem(call *CallNode, alias string, in *nested.Schema, line int) (Item, error) {
	if len(call.Args) != 1 {
		return Item{}, &Error{Line: line, Msg: "FLATTEN takes exactly one argument"}
	}
	if alias != "" {
		return Item{}, &Error{Line: line, Msg: "FLATTEN cannot take an alias"}
	}
	switch arg := call.Args[0].(type) {
	case *CallNode:
		if aggNames[upper(arg.Func)] {
			return Item{}, &Error{Line: line, Msg: "cannot FLATTEN an aggregate"}
		}
		return c.compileUDFItem(arg, "", in, true, line)
	case *FieldNode:
		expr, err := compileExpr(arg, in)
		if err != nil {
			return Item{}, err
		}
		fe := expr.(*fieldExpr)
		t := fe.Type()
		if t.Kind != nested.KindBag || t.Elem == nil {
			return Item{}, &Error{Line: line, Msg: fmt.Sprintf("FLATTEN argument must be a bag field, got %s", t)}
		}
		item := Item{Kind: ItemFlattenBag, BagPath: fe.Path()}
		for _, f := range t.Elem.Fields {
			item.Names = append(item.Names, f.Name)
			item.Types = append(item.Types, f.Type)
		}
		return item, nil
	default:
		return Item{}, &Error{Line: line, Msg: "FLATTEN argument must be a bag field or a UDF call"}
	}
}
