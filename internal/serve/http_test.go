package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"lipstick/internal/core"
	"lipstick/internal/nested"
	"lipstick/internal/pig"
	"lipstick/internal/testutil"
	"lipstick/internal/workflow"
)

// saveSnapshot tracks a small two-module workflow (request -> stateful
// match) and persists it, returning the snapshot path.
func saveSnapshot(t *testing.T) string {
	t.Helper()
	str := nested.ScalarType(nested.KindString)
	flt := nested.ScalarType(nested.KindFloat)
	reqSchema := nested.NewSchema(nested.Field{Name: "Sku", Type: str})
	itemSchema := nested.NewSchema(
		nested.Field{Name: "Sku", Type: str},
		nested.Field{Name: "Price", Type: flt},
	)
	src := &workflow.Module{Name: "M_src", Out: nested.RelationSchemas{"Req": reqSchema}}
	match := &workflow.Module{
		Name:  "M_match",
		In:    nested.RelationSchemas{"Req": reqSchema},
		State: nested.RelationSchemas{"Items": itemSchema},
		Out:   nested.RelationSchemas{"Matches": itemSchema},
		Program: `
MJ = JOIN Items BY Sku, Req BY Sku;
Matches = FOREACH MJ GENERATE Items::Sku AS Sku, Items::Price AS Price;
`,
		Registry: pig.NewRegistry(),
	}
	w := workflow.New()
	if err := w.AddNode("src", src); err != nil {
		t.Fatal(err)
	}
	if err := w.AddNode("match", match); err != nil {
		t.Fatal(err)
	}
	if err := w.AddEdge("src", "match", "Req"); err != nil {
		t.Fatal(err)
	}
	w.In = []string{"src"}
	w.Out = []string{"match"}

	tr, err := core.NewTracker(w, workflow.Fine)
	if err != nil {
		t.Fatal(err)
	}
	items := nested.NewBag(
		nested.NewTuple(nested.Str("A"), nested.Float(10)),
		nested.NewTuple(nested.Str("B"), nested.Float(99)),
	)
	if err := tr.Runner().SetState("M_match", "Items", items, "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Execute(workflow.Inputs{"src": {"Req": nested.NewBag(nested.NewTuple(nested.Str("A")))}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "serve.lpsk")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func testServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(saveSnapshot(t)))
	t.Cleanup(srv.Close)
	return srv, svc
}

// getJSON fetches a URL, asserts the status, and decodes the JSON body.
func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body: %s)", url, resp.StatusCode, wantStatus, body)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: invalid JSON %q: %v", url, body, err)
		}
	}
}

func TestHTTPInfoOutputsHealth(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _ := testServer(t)

	var health map[string]any
	getJSON(t, srv.URL+"/healthz", 200, &health)
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}

	var info InfoResult
	getJSON(t, srv.URL+"/v1/info", 200, &info)
	if info.Nodes == 0 || info.Edges == 0 || info.Invocations != 1 {
		t.Errorf("info = %+v", info)
	}

	var outs OutputsResult
	getJSON(t, srv.URL+"/v1/outputs", 200, &outs)
	if len(outs.Relations) == 0 {
		t.Fatalf("outputs = %+v", outs)
	}
	found := false
	for _, rel := range outs.Relations {
		for _, tu := range rel.Tuples {
			if strings.Contains(tu.Tuple, "10") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("matched tuple missing from %+v", outs)
	}
}

func TestHTTPZoom(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _ := testServer(t)

	var zoom ZoomResult
	getJSON(t, srv.URL+"/v1/zoom?module=M_match", 200, &zoom)
	if zoom.NodesAfter >= zoom.NodesBefore || zoom.HiddenNodes == 0 || zoom.ZoomNodes == 0 {
		t.Errorf("zoom = %+v", zoom)
	}

	// Zoom must not mutate the shared cached processor: ask again.
	var again ZoomResult
	getJSON(t, srv.URL+"/v1/zoom?module=M_match", 200, &again)
	if again.NodesBefore != zoom.NodesBefore || again.NodesAfter != zoom.NodesAfter || again.HiddenNodes != zoom.HiddenNodes {
		t.Errorf("second zoom differs: %+v vs %+v", again, zoom)
	}

	var errBody map[string]string
	getJSON(t, srv.URL+"/v1/zoom?module=M_nope", 400, &errBody)
	if !strings.Contains(errBody["error"], "M_nope") {
		t.Errorf("error = %v", errBody)
	}
	getJSON(t, srv.URL+"/v1/zoom", 400, &errBody)
}

func TestHTTPDeleteSubgraphLineage(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _ := testServer(t)

	// Find a base tuple to query from.
	var find FindResult
	getJSON(t, srv.URL+"/v1/find?type=tuple&label=item0", 200, &find)
	if find.Count != 1 {
		t.Fatalf("find = %+v", find)
	}
	node := fmt.Sprint(find.Nodes[0])

	var del DeleteResult
	getJSON(t, srv.URL+"/v1/delete?node="+node, 200, &del)
	if del.RemovedCount == 0 || len(del.Removed) != del.RemovedCount {
		t.Errorf("delete = %+v", del)
	}

	var sub SubgraphResult
	getJSON(t, srv.URL+"/v1/subgraph?node="+node, 200, &sub)
	if sub.Size == 0 || len(sub.Nodes) != sub.Size {
		t.Errorf("subgraph = %+v", sub)
	}

	var lin LineageResult
	getJSON(t, srv.URL+"/v1/lineage?node="+node, 200, &lin)
	if lin.Provenance == "" {
		t.Errorf("lineage = %+v", lin)
	}

	// Lineage of an output tuple classifies its ancestry.
	var matches FindResult
	getJSON(t, srv.URL+"/v1/find?type=o&module=M_match", 200, &matches)
	if matches.Count == 0 {
		t.Fatal("no module outputs found")
	}
	getJSON(t, srv.URL+"/v1/lineage?node="+fmt.Sprint(matches.Nodes[0]), 200, &lin)
	if lin.AncestorCount == 0 || len(lin.Modules) == 0 {
		t.Errorf("output lineage = %+v", lin)
	}

	var errBody map[string]string
	getJSON(t, srv.URL+"/v1/delete?node=xx", 400, &errBody)
	if !strings.Contains(errBody["error"], "invalid node id") {
		t.Errorf("error = %v", errBody)
	}
	getJSON(t, srv.URL+"/v1/subgraph?node=999999", 400, nil)
	getJSON(t, srv.URL+"/v1/lineage?node=-1", 400, nil)
	getJSON(t, srv.URL+"/v1/find?type=bogus", 400, nil)
	getJSON(t, srv.URL+"/v1/find?class=q", 400, nil)
	getJSON(t, srv.URL+"/v1/find?op=frobnicate", 400, nil)
}

func TestHTTPExports(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _ := testServer(t)

	resp, err := http.Get(srv.URL + "/v1/dot")
	if err != nil {
		t.Fatal(err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(dot), "digraph") {
		t.Errorf("dot: status %d, body %.60s", resp.StatusCode, dot)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "graphviz") {
		t.Errorf("dot content type = %q", ct)
	}

	var opmDoc map[string]any
	getJSON(t, srv.URL+"/v1/opm", 200, &opmDoc)
	var snapDoc map[string]any
	getJSON(t, srv.URL+"/v1/json", 200, &snapDoc)
	if _, ok := snapDoc["nodes"]; !ok {
		t.Errorf("snapshot JSON missing nodes: %v", snapDoc)
	}
}

func TestHTTPErrorsAndMethods(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	svc := NewService(nil)
	missing := filepath.Join(t.TempDir(), "missing.lpsk")
	srv := httptest.NewServer(svc.Handler(missing))
	defer srv.Close()

	var errBody map[string]string
	getJSON(t, srv.URL+"/v1/info", 404, &errBody)
	if errBody["error"] == "" {
		t.Errorf("missing snapshot error = %v", errBody)
	}

	srv2, _ := testServer(t)
	resp, err := http.Post(srv2.URL+"/v1/info", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/info = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(srv2.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPCachedProcessorIsShared asserts repeated requests hit one
// loaded processor (the tentpole: serve answers from the cache, not
// load-per-query).
func TestHTTPCachedProcessorIsShared(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	path := saveSnapshot(t)
	svc := NewService(core.NewSnapshotManager(2))
	srv := httptest.NewServer(svc.Handler(path))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		getJSON(t, srv.URL+"/v1/info", 200, nil)
	}
	qp1, err := svc.Manager().Open(path)
	if err != nil {
		t.Fatal(err)
	}
	qp2, err := svc.Manager().Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if qp1 != qp2 {
		t.Error("manager handed out distinct processors for one snapshot")
	}
	if svc.Manager().Len() != 1 {
		t.Errorf("cache len = %d", svc.Manager().Len())
	}
}
