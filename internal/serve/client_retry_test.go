package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/testutil"
)

// retryBackend is an ingest endpoint that rejects the first `reject`
// attempts with the given status, then accepts, tracking the stream
// sequence like the real handler (idempotent by batch first-sequence).
type retryBackend struct {
	mu       sync.Mutex
	reject   int // remaining rejections; guarded by mu
	status   int
	attempts int    // guarded by mu
	seq      uint64 // guarded by mu
}

func (b *retryBackend) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.attempts++
		if b.reject > 0 {
			b.reject--
			http.Error(w, "overloaded", b.status)
			return
		}
		first, events, err := store.DecodeEventBatch(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if first == b.seq+1 {
			b.seq += uint64(len(events))
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"seq": b.seq})
	})
}

// testEvents builds n consecutive valid node-add events.
func testEvents(n int) []provgraph.Event {
	events := make([]provgraph.Event, n)
	for i := range events {
		events[i] = provgraph.Event{Kind: provgraph.EvAddNode, Node: provgraph.Node{
			ID: provgraph.NodeID(i), Class: provgraph.ClassP,
			Type: provgraph.TypeBaseTuple, Label: "tok", Inv: -1,
		}}
	}
	return events
}

func TestIngestClientRetriesThroughOverloadBurst(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		t.Run(fmt.Sprint(status), func(t *testing.T) {
			backend := &retryBackend{reject: 3, status: status}
			srv := httptest.NewServer(backend.handler())
			defer srv.Close()

			var delays []time.Duration
			c := NewIngestClient(srv.URL, "burst", 4)
			c.RetryBase = 8 * time.Millisecond
			c.sleep = func(d time.Duration) { delays = append(delays, d) }
			for _, ev := range testEvents(4) {
				c.Record(ev)
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("flush after burst: %v", err)
			}
			if got := c.Sent(); got != 4 {
				t.Fatalf("Sent = %d, want 4", got)
			}
			if backend.attempts != 4 {
				t.Fatalf("server saw %d attempts, want 4 (3 rejections + 1 success)", backend.attempts)
			}
			// Full jitter: attempt i sleeps in [base*2^i/2, base*2^i).
			if len(delays) != 3 {
				t.Fatalf("recorded %d backoff sleeps, want 3", len(delays))
			}
			base := c.RetryBase
			for i, d := range delays {
				lo, hi := base/2, base
				if d < lo || d >= hi {
					t.Fatalf("delay %d = %v outside jitter window [%v, %v)", i, d, lo, hi)
				}
				base *= 2
			}
		})
	}
}

func TestIngestClientBackoffCapsAtTwoSeconds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &retryBackend{reject: 12, status: http.StatusTooManyRequests}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	var delays []time.Duration
	c := NewIngestClient(srv.URL, "cap", 2)
	c.RetryBase = 500 * time.Millisecond
	c.MaxRetries = 12
	c.sleep = func(d time.Duration) { delays = append(delays, d) }
	for _, ev := range testEvents(2) {
		c.Record(ev)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(delays) != 12 {
		t.Fatalf("recorded %d sleeps, want 12", len(delays))
	}
	for i, d := range delays {
		if d >= maxRetryBackoff {
			t.Fatalf("delay %d = %v reached the %v cap (jitter keeps it strictly below)", i, d, maxRetryBackoff)
		}
	}
	// Deep into the schedule every delay sits in the capped window.
	for _, d := range delays[3:] {
		if d < maxRetryBackoff/2 {
			t.Fatalf("capped-phase delay %v below %v", d, maxRetryBackoff/2)
		}
	}
}

func TestIngestClientGivesUpAfterMaxRetries(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &retryBackend{reject: 1 << 30, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	c := NewIngestClient(srv.URL, "doomed", 2)
	c.RetryBase = time.Millisecond
	c.MaxRetries = 3
	var sleeps int
	c.sleep = func(time.Duration) { sleeps++ }
	for _, ev := range testEvents(2) {
		c.Record(ev)
	}
	err := c.Flush()
	if err == nil {
		t.Fatal("flush succeeded against a permanently overloaded server")
	}
	// The sticky error preserves the last rejection's status line.
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error %q does not carry the last HTTP status", err)
	}
	if backend.attempts != 4 {
		t.Fatalf("server saw %d attempts, want 4 (initial + MaxRetries)", backend.attempts)
	}
	if sleeps != 3 {
		t.Fatalf("slept %d times, want 3", sleeps)
	}
	// Sticky: later records are dropped, not buffered behind a dead stream.
	c.Record(testEvents(1)[0])
	if got := c.Err(); got == nil || got.Error() != err.Error() {
		t.Fatalf("sticky error changed: %v", got)
	}
}

func TestIngestClientFatalStatusIsNotRetried(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &retryBackend{reject: 1, status: http.StatusBadRequest}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	c := NewIngestClient(srv.URL, "fatal", 2)
	c.sleep = func(time.Duration) { t.Fatal("a 400 must not back off and retry") }
	for _, ev := range testEvents(2) {
		c.Record(ev)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("flush swallowed a fatal rejection")
	}
	if backend.attempts != 1 {
		t.Fatalf("server saw %d attempts, want 1", backend.attempts)
	}
}

// failoverBackend acks writes like retryBackend, then simulates a
// failover to a trailing promoted follower: its sequence rolls back and
// a configurable window of 503+Retry-After rejections precedes it.
type failoverBackend struct {
	mu        sync.Mutex
	seq       uint64 // guarded by mu
	reject503 int    // remaining suspect-window rejections; guarded by mu
	gaps      int    // ingest-gap responses served; guarded by mu
	applied   []uint64
}

func (b *failoverBackend) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.reject503 > 0 {
			b.reject503--
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": "failover in progress", "kind": "failover"})
			return
		}
		first, events, err := store.DecodeEventBatch(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch {
		case first == b.seq+1:
			for i := range events {
				b.applied = append(b.applied, first+uint64(i))
			}
			b.seq += uint64(len(events))
		case first > b.seq+1:
			b.gaps++
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": "sequence gap", "kind": "ingest-gap",
				"expected": b.seq + 1, "got": first,
			})
			return
		default:
			// Duplicate prefix: dedupe by sequence, apply the rest.
			for i := range events {
				if s := first + uint64(i); s > b.seq {
					b.applied = append(b.applied, s)
					b.seq = s
				}
			}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"seq": b.seq})
	})
}

func TestIngestClientRewindsThroughFailover(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &failoverBackend{}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	c := NewIngestClient(srv.URL, "failover", 4)
	c.RetryBase = time.Millisecond
	c.sleep = func(time.Duration) {}
	events := testEvents(12)
	for _, ev := range events[:8] {
		c.Record(ev)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("pre-failover flush: %v", err)
	}
	// The primary dies: the promoted follower only replicated 5 of the 8
	// acked events and rejects writes during the suspect window.
	backend.mu.Lock()
	backend.seq = 5
	backend.applied = backend.applied[:5]
	backend.reject503 = 2
	backend.mu.Unlock()
	for _, ev := range events[8:] {
		c.Record(ev)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("post-failover flush: %v", err)
	}
	if got := c.Sent(); got != 12 {
		t.Fatalf("Sent = %d, want 12", got)
	}
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if backend.seq != 12 {
		t.Fatalf("server seq = %d, want 12 (zero acked-write loss)", backend.seq)
	}
	if backend.gaps == 0 {
		t.Fatal("the rewind path was never exercised")
	}
	// Exactly-once: every sequence applied once, in order, no duplicates.
	seen := map[uint64]bool{}
	for _, s := range backend.applied {
		if seen[s] {
			t.Fatalf("sequence %d applied twice", s)
		}
		seen[s] = true
	}
	for s := uint64(1); s <= 12; s++ {
		if !seen[s] {
			t.Fatalf("sequence %d never applied", s)
		}
	}
}

func TestIngestClientRewindBeyondRetainWindowIsSticky(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &failoverBackend{}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	c := NewIngestClient(srv.URL, "lost", 4)
	c.RetryBase = time.Millisecond
	c.RetainEvents = -1 // no replay window
	c.sleep = func(time.Duration) {}
	for _, ev := range testEvents(8) {
		c.Record(ev)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	backend.mu.Lock()
	backend.seq = 3 // promoted follower lost acked events 4..8
	backend.mu.Unlock()
	c.Record(testEvents(1)[0])
	if err := c.Flush(); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("unrecoverable gap error = %v, want a loud 409 failure", err)
	}
}
