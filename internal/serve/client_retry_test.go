package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/testutil"
)

// retryBackend is an ingest endpoint that rejects the first `reject`
// attempts with the given status, then accepts, tracking the stream
// sequence like the real handler (idempotent by batch first-sequence).
type retryBackend struct {
	mu       sync.Mutex
	reject   int // remaining rejections; guarded by mu
	status   int
	attempts int    // guarded by mu
	seq      uint64 // guarded by mu
}

func (b *retryBackend) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.attempts++
		if b.reject > 0 {
			b.reject--
			http.Error(w, "overloaded", b.status)
			return
		}
		first, events, err := store.DecodeEventBatch(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if first == b.seq+1 {
			b.seq += uint64(len(events))
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"seq": b.seq})
	})
}

// testEvents builds n consecutive valid node-add events.
func testEvents(n int) []provgraph.Event {
	events := make([]provgraph.Event, n)
	for i := range events {
		events[i] = provgraph.Event{Kind: provgraph.EvAddNode, Node: provgraph.Node{
			ID: provgraph.NodeID(i), Class: provgraph.ClassP,
			Type: provgraph.TypeBaseTuple, Label: "tok", Inv: -1,
		}}
	}
	return events
}

func TestIngestClientRetriesThroughOverloadBurst(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		t.Run(fmt.Sprint(status), func(t *testing.T) {
			backend := &retryBackend{reject: 3, status: status}
			srv := httptest.NewServer(backend.handler())
			defer srv.Close()

			var delays []time.Duration
			c := NewIngestClient(srv.URL, "burst", 4)
			c.RetryBase = 8 * time.Millisecond
			c.sleep = func(d time.Duration) { delays = append(delays, d) }
			for _, ev := range testEvents(4) {
				c.Record(ev)
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("flush after burst: %v", err)
			}
			if got := c.Sent(); got != 4 {
				t.Fatalf("Sent = %d, want 4", got)
			}
			if backend.attempts != 4 {
				t.Fatalf("server saw %d attempts, want 4 (3 rejections + 1 success)", backend.attempts)
			}
			// Full jitter: attempt i sleeps in [base*2^i/2, base*2^i).
			if len(delays) != 3 {
				t.Fatalf("recorded %d backoff sleeps, want 3", len(delays))
			}
			base := c.RetryBase
			for i, d := range delays {
				lo, hi := base/2, base
				if d < lo || d >= hi {
					t.Fatalf("delay %d = %v outside jitter window [%v, %v)", i, d, lo, hi)
				}
				base *= 2
			}
		})
	}
}

func TestIngestClientBackoffCapsAtTwoSeconds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &retryBackend{reject: 12, status: http.StatusTooManyRequests}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	var delays []time.Duration
	c := NewIngestClient(srv.URL, "cap", 2)
	c.RetryBase = 500 * time.Millisecond
	c.MaxRetries = 12
	c.sleep = func(d time.Duration) { delays = append(delays, d) }
	for _, ev := range testEvents(2) {
		c.Record(ev)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(delays) != 12 {
		t.Fatalf("recorded %d sleeps, want 12", len(delays))
	}
	for i, d := range delays {
		if d >= maxRetryBackoff {
			t.Fatalf("delay %d = %v reached the %v cap (jitter keeps it strictly below)", i, d, maxRetryBackoff)
		}
	}
	// Deep into the schedule every delay sits in the capped window.
	for _, d := range delays[3:] {
		if d < maxRetryBackoff/2 {
			t.Fatalf("capped-phase delay %v below %v", d, maxRetryBackoff/2)
		}
	}
}

func TestIngestClientGivesUpAfterMaxRetries(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &retryBackend{reject: 1 << 30, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	c := NewIngestClient(srv.URL, "doomed", 2)
	c.RetryBase = time.Millisecond
	c.MaxRetries = 3
	var sleeps int
	c.sleep = func(time.Duration) { sleeps++ }
	for _, ev := range testEvents(2) {
		c.Record(ev)
	}
	err := c.Flush()
	if err == nil {
		t.Fatal("flush succeeded against a permanently overloaded server")
	}
	// The sticky error preserves the last rejection's status line.
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error %q does not carry the last HTTP status", err)
	}
	if backend.attempts != 4 {
		t.Fatalf("server saw %d attempts, want 4 (initial + MaxRetries)", backend.attempts)
	}
	if sleeps != 3 {
		t.Fatalf("slept %d times, want 3", sleeps)
	}
	// Sticky: later records are dropped, not buffered behind a dead stream.
	c.Record(testEvents(1)[0])
	if got := c.Err(); got == nil || got.Error() != err.Error() {
		t.Fatalf("sticky error changed: %v", got)
	}
}

func TestIngestClientFatalStatusIsNotRetried(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	backend := &retryBackend{reject: 1, status: http.StatusBadRequest}
	srv := httptest.NewServer(backend.handler())
	defer srv.Close()

	c := NewIngestClient(srv.URL, "fatal", 2)
	c.sleep = func(time.Duration) { t.Fatal("a 400 must not back off and retry") }
	for _, ev := range testEvents(2) {
		c.Record(ev)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("flush swallowed a fatal rejection")
	}
	if backend.attempts != 1 {
		t.Fatalf("server saw %d attempts, want 1", backend.attempts)
	}
}
