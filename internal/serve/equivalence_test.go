package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/workflow"
	"lipstick/internal/workflowgen"
)

// runSnapshot assembles a deterministic snapshot from a finished run
// (outputs in sorted node/relation order, like Tracker.Snapshot).
func runSnapshot(r *workflow.Runner, execs []*workflow.Execution) *store.Snapshot {
	snap := &store.Snapshot{Graph: r.Graph()}
	for _, e := range execs {
		nodes := make([]string, 0, len(e.Outputs))
		for node := range e.Outputs {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		for _, node := range nodes {
			rels := e.Outputs[node]
			names := make([]string, 0, len(rels))
			for rel := range rels {
				names = append(names, rel)
			}
			sort.Strings(names)
			for _, rel := range names {
				dump := store.RelationDump{Execution: e.Index, Node: node, Relation: rel}
				for _, tup := range rels[rel].Tuples {
					dump.Tuples = append(dump.Tuples, store.AnnotatedTuple{
						Tuple: tup.Tuple, Prov: tup.Prov, Mult: tup.Mult,
					})
				}
				snap.Outputs = append(snap.Outputs, dump)
			}
		}
	}
	return snap
}

// equivalenceWorkloads runs the two paper workloads, sequentially and with
// an 8-worker pool, and returns each run's snapshot.
func equivalenceWorkloads(t *testing.T) map[string]*store.Snapshot {
	t.Helper()
	out := map[string]*store.Snapshot{}
	for _, par := range []int{0, 8} {
		name := "seq"
		if par > 0 {
			name = "par"
		}
		dr, err := workflowgen.RunDealership(workflowgen.DealershipParams{
			NumCars: 120, NumExec: 3, Seed: 3,
			Gran: workflow.Fine, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		out["dealership-"+name] = runSnapshot(dr.Runner, dr.Executions)

		ar, err := workflowgen.NewArcticRun(workflowgen.ArcticParams{
			Stations: 4, Topology: workflowgen.Parallel,
			Selectivity: workflowgen.SelMonth, NumExec: 2, Seed: 3,
			Gran: workflow.Fine, HistoryYears: 2, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ar.ExecuteAll(); err != nil {
			t.Fatal(err)
		}
		out["arctic-"+name] = runSnapshot(ar.Runner, ar.Executions)
	}
	return out
}

func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestColumnarLegacyEndpointEquivalence is the tentpole's acceptance gate:
// every query endpoint must answer byte-identically whether the snapshot
// was decoded from the legacy v1 format or opened from a columnar v3 file
// (memory-mapped where supported), on both paper workloads, built
// sequentially and in parallel.
func TestColumnarLegacyEndpointEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("workload tracking is slow in -short mode")
	}
	for name, snap := range equivalenceWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			legacyPath := filepath.Join(dir, "legacy.lpsk")
			var v1 bytes.Buffer
			if err := store.WriteV1(&v1, snap); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(legacyPath, v1.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			columnarPath := filepath.Join(dir, "columnar.lpsk")
			if err := store.Save(columnarPath, snap); err != nil {
				t.Fatal(err)
			}

			svc := NewService(nil)
			// Deterministic query arguments: the first live module-output
			// node and the first invocation's module.
			lqp, err := svc.Manager().Open(legacyPath)
			if err != nil {
				t.Fatal(err)
			}
			probe := provgraph.InvalidNode
			lqp.Graph().Nodes(func(n provgraph.Node) bool {
				if n.Type == provgraph.TypeModuleOutput {
					probe = n.ID
					return false
				}
				return true
			})
			if probe == provgraph.InvalidNode {
				t.Fatal("workload produced no module-output nodes")
			}
			module := lqp.Graph().Invocation(0).Module
			nodeArg := strconv.Itoa(int(probe))

			checks := []struct {
				name string
				get  func(path string) ([]byte, error)
			}{
				{"info", func(p string) ([]byte, error) {
					r, err := svc.Info(p)
					return jsonBytes(t, r), err
				}},
				{"outputs", func(p string) ([]byte, error) {
					r, err := svc.Outputs(p)
					return jsonBytes(t, r), err
				}},
				{"find-type", func(p string) ([]byte, error) {
					r, err := svc.Find(p, FindRequest{Types: []string{"o"}})
					return jsonBytes(t, r), err
				}},
				{"find-module", func(p string) ([]byte, error) {
					r, err := svc.Find(p, FindRequest{Module: module, Classes: []string{"p"}})
					return jsonBytes(t, r), err
				}},
				{"subgraph", func(p string) ([]byte, error) {
					r, err := svc.Subgraph(p, nodeArg)
					return jsonBytes(t, r), err
				}},
				{"lineage", func(p string) ([]byte, error) {
					r, err := svc.Lineage(p, nodeArg)
					return jsonBytes(t, r), err
				}},
				{"zoom", func(p string) ([]byte, error) {
					r, err := svc.Zoom(p, module)
					return jsonBytes(t, r), err
				}},
				{"delete", func(p string) ([]byte, error) {
					r, err := svc.Delete(p, nodeArg)
					return jsonBytes(t, r), err
				}},
				{"dot", func(p string) ([]byte, error) {
					var buf bytes.Buffer
					err := svc.WriteDOT(p, &buf)
					return buf.Bytes(), err
				}},
				{"opm", func(p string) ([]byte, error) {
					var buf bytes.Buffer
					err := svc.WriteOPM(p, &buf)
					return buf.Bytes(), err
				}},
				{"json", func(p string) ([]byte, error) {
					var buf bytes.Buffer
					err := svc.WriteJSON(p, &buf)
					return buf.Bytes(), err
				}},
			}
			for _, c := range checks {
				legacy, err := c.get(legacyPath)
				if err != nil {
					t.Fatalf("%s over legacy snapshot: %v", c.name, err)
				}
				columnar, err := c.get(columnarPath)
				if err != nil {
					t.Fatalf("%s over columnar snapshot: %v", c.name, err)
				}
				if !bytes.Equal(legacy, columnar) {
					t.Errorf("%s: columnar answer differs from legacy\nlegacy:   %.200s\ncolumnar: %.200s",
						c.name, legacy, columnar)
				}
			}
		})
	}
}
