package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lipstick/internal/provgraph"
)

// postJSON sends a JSON body, asserts the status, and decodes the reply.
func postJSON(t *testing.T, url string, body any, wantStatus int, into any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d (body: %s)", url, resp.StatusCode, wantStatus, raw)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("POST %s: invalid JSON %q: %v", url, raw, err)
		}
	}
}

func doDelete(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE %s = %d, want %d (body: %s)", url, resp.StatusCode, wantStatus, raw)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("DELETE %s: invalid JSON %q: %v", url, raw, err)
		}
	}
}

func TestHTTPSnapshotRegistryRoutes(t *testing.T) {
	path := saveSnapshot(t)
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(path))
	defer srv.Close()

	var snaps SnapshotsResult
	getJSON(t, srv.URL+"/v1/snapshots", 200, &snaps)
	if snaps.Count != 1 || snaps.Snapshots[0].Name != "serve" || snaps.Snapshots[0].Path != path {
		t.Fatalf("snapshots = %+v", snaps)
	}

	// The same query must answer identically flat and by name.
	var flat, named InfoResult
	getJSON(t, srv.URL+"/v1/info", 200, &flat)
	getJSON(t, srv.URL+"/v1/snapshots/serve/info", 200, &named)
	if fmt.Sprintf("%+v", flat) != fmt.Sprintf("%+v", named) {
		t.Errorf("flat info %+v != named info %+v", flat, named)
	}
	var find FindResult
	getJSON(t, srv.URL+"/v1/snapshots/serve/find?type=m", 200, &find)
	if find.Count != 1 {
		t.Errorf("named find = %+v", find)
	}
	resp, err := http.Get(srv.URL + "/v1/snapshots/serve/dot")
	if err != nil {
		t.Fatal(err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(dot), "digraph") {
		t.Errorf("named dot: %d %.40s", resp.StatusCode, dot)
	}
}

// TestHTTPNotFoundShapes asserts the structured 404 bodies for unknown
// snapshot names and unknown session ids.
func TestHTTPNotFoundShapes(t *testing.T) {
	srv, _ := testServer(t)

	var body map[string]string
	getJSON(t, srv.URL+"/v1/snapshots/ghost/info", 404, &body)
	if body["kind"] != "snapshot" || body["name"] != "ghost" || !strings.Contains(body["error"], "ghost") {
		t.Errorf("snapshot 404 = %v", body)
	}

	getJSON(t, srv.URL+"/v1/sessions/sess-99/find", 404, &body)
	if body["kind"] != "session" || body["name"] != "sess-99" || !strings.Contains(body["error"], "sess-99") {
		t.Errorf("session 404 = %v", body)
	}

	postJSON(t, srv.URL+"/v1/sessions/sess-99/zoom", SessionZoomRequest{Modules: []string{"M"}}, 404, &body)
	if body["kind"] != "session" {
		t.Errorf("session zoom 404 = %v", body)
	}
	doDelete(t, srv.URL+"/v1/sessions/sess-99", 404, &body)
	if body["kind"] != "session" {
		t.Errorf("session delete 404 = %v", body)
	}
	postJSON(t, srv.URL+"/v1/sessions", map[string]string{"snapshot": "ghost"}, 404, &body)
	if body["kind"] != "snapshot" {
		t.Errorf("create-session 404 = %v", body)
	}

	// The mux fallbacks keep the JSON contract too.
	getJSON(t, srv.URL+"/no/such/route", 404, &body)
	if body["error"] == "" {
		t.Errorf("route 404 = %v", body)
	}
}

func TestHTTPSessionLifecycle(t *testing.T) {
	srv, _ := testServer(t)

	var sess SessionResult
	postJSON(t, srv.URL+"/v1/sessions", map[string]string{"snapshot": "serve"}, 200, &sess)
	if sess.ID == "" || sess.Snapshot != "serve" || sess.Nodes == 0 || sess.Changes != 0 {
		t.Fatalf("created session = %+v", sess)
	}
	base := sess.Nodes
	u := srv.URL + "/v1/sessions/" + sess.ID

	// Zoom out, verify the view shrank and a zoom node appeared.
	var zoom SessionZoomResult
	postJSON(t, u+"/zoom", SessionZoomRequest{Modules: []string{"M_match"}}, 200, &zoom)
	if zoom.Action != "out" || zoom.NodesAfter >= base || zoom.ZoomNodes != 1 ||
		fmt.Sprint(zoom.ZoomedOut) != "[M_match]" {
		t.Fatalf("zoom = %+v", zoom)
	}
	var find FindResult
	getJSON(t, u+"/find?type=zoom", 200, &find)
	if find.Count != 1 {
		t.Fatalf("session find zoom = %+v", find)
	}

	// Zoom back in: the zoom node disappears from session queries.
	postJSON(t, u+"/zoom", SessionZoomRequest{In: true}, 200, &zoom)
	if zoom.Action != "in" || zoom.NodesAfter != base || len(zoom.ZoomedOut) != 0 {
		t.Fatalf("zoom in = %+v", zoom)
	}
	getJSON(t, u+"/find?type=zoom", 200, &find)
	if find.Count != 0 {
		t.Fatalf("zoom node survived zoom-in: %+v", find)
	}

	// What-if delete does not change the view; applied delete does.
	getJSON(t, srv.URL+"/v1/find?type=tuple&label=item0", 200, &find)
	if find.Count != 1 {
		t.Fatalf("find item0 = %+v", find)
	}
	target := find.Nodes[0]
	var del SessionDeleteResult
	postJSON(t, u+"/delete", SessionDeleteRequest{Nodes: []provgraph.NodeID{target}, WhatIf: true}, 200, &del)
	if del.Applied || del.RemovedCount == 0 || del.NodesAfter != base {
		t.Fatalf("what-if delete = %+v", del)
	}
	postJSON(t, u+"/delete", SessionDeleteRequest{Nodes: []provgraph.NodeID{target}}, 200, &del)
	if !del.Applied || del.RemovedCount == 0 || del.NodesAfter >= base {
		t.Fatalf("applied delete = %+v", del)
	}

	// Session-scoped queries see the mutation; the snapshot's don't.
	var sessInfo SessionResult
	getJSON(t, u, 200, &sessInfo)
	if sessInfo.Nodes != base-del.RemovedCount || sessInfo.Changes == 0 {
		t.Fatalf("session info after delete = %+v (base %d, removed %d)", sessInfo, base, del.RemovedCount)
	}
	var snapInfo InfoResult
	getJSON(t, srv.URL+"/v1/info", 200, &snapInfo)
	if snapInfo.Nodes != base {
		t.Fatalf("mutation leaked into the shared snapshot: %+v", snapInfo)
	}
	var lin LineageResult
	getJSON(t, u+"/lineage?node=0", 200, &lin)
	if lin.Provenance == "" {
		t.Errorf("session lineage = %+v", lin)
	}
	var sub SubgraphResult
	getJSON(t, u+"/subgraph?node=0", 200, &sub)
	if sub.Size == 0 {
		t.Errorf("session subgraph = %+v", sub)
	}
	resp, err := http.Get(u + "/dot")
	if err != nil {
		t.Fatal(err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(dot), "digraph") {
		t.Errorf("session dot: %d %.40s", resp.StatusCode, dot)
	}

	// Listing shows the session; closing removes it.
	var list SessionsResult
	getJSON(t, srv.URL+"/v1/sessions", 200, &list)
	if list.Count != 1 || list.Sessions[0].ID != sess.ID {
		t.Fatalf("sessions = %+v", list)
	}
	doDelete(t, u, 200, nil)
	getJSON(t, srv.URL+"/v1/sessions", 200, &list)
	if list.Count != 0 {
		t.Fatalf("sessions after close = %+v", list)
	}
	getJSON(t, u, 404, nil)
}

func TestHTTPSessionBadRequests(t *testing.T) {
	srv, _ := testServer(t)

	var sess SessionResult
	postJSON(t, srv.URL+"/v1/sessions", map[string]string{"snapshot": "serve"}, 200, &sess)
	u := srv.URL + "/v1/sessions/" + sess.ID

	var body map[string]string
	postJSON(t, srv.URL+"/v1/sessions", map[string]string{}, 400, &body) // no snapshot name
	postJSON(t, srv.URL+"/v1/sessions", "not-json", 400, &body)          // malformed body
	postJSON(t, u+"/zoom", SessionZoomRequest{}, 400, &body)             // no modules
	postJSON(t, u+"/zoom", SessionZoomRequest{Modules: []string{"M_ghost"}}, 400, &body)
	postJSON(t, u+"/zoom", SessionZoomRequest{Modules: []string{"M_match"}, In: true}, 400, &body)
	postJSON(t, u+"/zoom", SessionZoomRequest{In: true}, 400, &body) // nothing zoomed out
	postJSON(t, u+"/delete", SessionDeleteRequest{}, 400, &body)
	postJSON(t, u+"/delete", SessionDeleteRequest{Nodes: []provgraph.NodeID{99999}}, 400, &body)
	getJSON(t, u+"/find?type=bogus", 400, &body)
	getJSON(t, u+"/subgraph?node=xx", 400, &body)
	getJSON(t, u+"/lineage?node=-2", 400, &body)

	// Double zoom-out of one module.
	postJSON(t, u+"/zoom", SessionZoomRequest{Modules: []string{"M_match"}}, 200, nil)
	postJSON(t, u+"/zoom", SessionZoomRequest{Modules: []string{"M_match"}}, 400, &body)
	if !strings.Contains(body["error"], "already zoomed out") {
		t.Errorf("double zoom error = %v", body)
	}
}

// TestHTTPServeDirMode exercises the multi-snapshot mode: no default
// snapshot, several registered names, flat endpoints rejected while
// ambiguous.
func TestHTTPServeDirMode(t *testing.T) {
	pathA, pathB := saveSnapshot(t), saveSnapshot(t)
	svc := NewService(nil)
	if err := svc.Registry().Register("a", pathA); err != nil {
		t.Fatal(err)
	}
	if err := svc.Registry().Register("b", pathB); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()

	var snaps SnapshotsResult
	getJSON(t, srv.URL+"/v1/snapshots", 200, &snaps)
	if snaps.Count != 2 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	var info InfoResult
	getJSON(t, srv.URL+"/v1/snapshots/b/info", 200, &info)
	if info.Nodes == 0 {
		t.Fatalf("named info = %+v", info)
	}
	// Two snapshots registered: the flat endpoint is ambiguous.
	var body map[string]string
	getJSON(t, srv.URL+"/v1/info", 400, &body)
	if !strings.Contains(body["error"], "no default snapshot") {
		t.Errorf("flat info error = %v", body)
	}
	// Sessions work per name.
	var sess SessionResult
	postJSON(t, srv.URL+"/v1/sessions", map[string]string{"snapshot": "b"}, 200, &sess)
	if sess.Snapshot != "b" {
		t.Fatalf("session = %+v", sess)
	}
}
