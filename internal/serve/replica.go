package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lipstick/internal/core"
	"lipstick/internal/store"
)

// Replication surface of the server. A primary exposes, per durable live
// graph:
//
//	GET /v1/replica/{name}/status            durable position + checkpoint seq
//	GET /v1/replica/{name}/events?from=N     binary event batch (catchup tail)
//	GET /v1/replica/{name}/checkpoint        newest checkpoint file (bootstrap)
//
// A follower (serve -follow) runs the same process in follower mode: it
// applies the primary's stream into its own live graphs and serves every
// read endpoint from published views, but rejects direct ingestion —
// writes belong to the primary until promotion. Live reads on a follower
// carry an X-Lipstick-Replica-Lag header (events behind the primary), and
// /v1/stats reports replicationLagSeq/replicationLagMs gauges.

// ReplicaLag describes how far one followed stream trails its primary.
type ReplicaLag struct {
	// PrimarySeq is the primary's last advertised durable sequence;
	// AppliedSeq is what this follower has applied locally.
	PrimarySeq uint64 `json:"primarySeq"`
	AppliedSeq uint64 `json:"appliedSeq"`
	// LagSeq = PrimarySeq - AppliedSeq; LagMs is the age of the last
	// successful poll of the primary (freshness of PrimarySeq itself).
	LagSeq uint64 `json:"replicationLagSeq"`
	LagMs  int64  `json:"replicationLagMs"`
	// State is the follower's health view of the stream: "tailing"
	// (caught up), "catching-up" (applying a backlog), or "unreachable"
	// (consecutive primary polls failed — the primary is likely gone).
	State string `json:"state,omitempty"`
	// Unreachable mirrors State == "unreachable"; aggregations exclude
	// such streams from the LagMs maxima, which would otherwise read as
	// ever-growing lag for a dead primary.
	Unreachable bool `json:"unreachable,omitempty"`
}

// ReplicaLagFunc reports the replication lag of one followed stream; ok
// is false for streams this process does not follow.
type ReplicaLagFunc func(name string) (ReplicaLag, bool)

// replicaState is the Service's runtime replication role. Promotion flips
// the role while requests are in flight, so the fields are atomics;
// roleMu serializes whole role transitions (promote/demote), which span
// several of them plus the hooks.
type replicaState struct {
	primary atomic.Pointer[string]         // published via primary; non-nil = follower mode
	lagFn   atomic.Pointer[ReplicaLagFunc] // published via lagFn
	// generation is the node's fencing epoch: writes stamped with a
	// different generation are rejected (see fenceCheck). Persisted to
	// <liveDir>/GENERATION so a restarted ex-primary stays fenced.
	generation  atomic.Uint64                      // published via generation
	promoteHook atomic.Pointer[func() error]       // published via promoteHook
	demoteHook  atomic.Pointer[func(string) error] // published via demoteHook
	roleMu      sync.Mutex
}

// SetFollower puts the service in follower mode: ingestion and forced
// checkpoints are rejected with *FollowerError (writes belong to the
// primary at primaryURL) until Promote.
func (s *Service) SetFollower(primaryURL string) {
	s.replica.primary.Store(&primaryURL)
}

// Promote clears follower mode: the process accepts writes from here on.
// The caller is responsible for having stopped the follower tail first.
func (s *Service) Promote() {
	s.replica.primary.Store(nil)
}

// FollowerPrimary returns the followed primary's URL and whether the
// service is in follower mode.
func (s *Service) FollowerPrimary() (string, bool) {
	p := s.replica.primary.Load()
	if p == nil {
		return "", false
	}
	return *p, true
}

// SetReplicationLag installs the per-stream lag reporter (the replica
// manager's view); live reads and /v1/stats advertise it.
func (s *Service) SetReplicationLag(fn ReplicaLagFunc) {
	s.replica.lagFn.Store(&fn)
}

// replicaLag reports the lag of one followed stream, when known.
func (s *Service) replicaLag(name string) (ReplicaLag, bool) {
	fn := s.replica.lagFn.Load()
	if fn == nil {
		return ReplicaLag{}, false
	}
	return (*fn)(name)
}

// ReplicationStats is the /v1/stats replication section: the follower
// role plus the worst lag across followed streams (expvar mirrors live
// in the replica package).
type ReplicationStats struct {
	Follower bool   `json:"follower"`
	Primary  string `json:"primary,omitempty"`
	// Generation is the node's fencing epoch (bumped by promotion).
	Generation uint64 `json:"generation"`
	// LagSeq / LagMs are the maxima across reachable followed streams:
	// events behind the primary, and the age of the freshest primary
	// poll. Streams whose primary stopped answering are excluded (their
	// poll age grows without bound) and counted in Unreachable instead.
	LagSeq uint64 `json:"replicationLagSeq"`
	LagMs  int64  `json:"replicationLagMs"`
	// Unreachable counts followed streams whose primary is gone; States
	// maps each followed stream to its health state.
	Unreachable int               `json:"unreachableStreams,omitempty"`
	States      map[string]string `json:"streamStates,omitempty"`
}

// replicationStats summarizes the replication role for Stats; nil when
// the process neither follows nor reports lag.
func (s *Service) replicationStats() *ReplicationStats {
	primary, follower := s.FollowerPrimary()
	fn := s.replica.lagFn.Load()
	if !follower && fn == nil {
		return nil
	}
	res := &ReplicationStats{Follower: follower, Primary: primary, Generation: s.Generation()}
	if fn != nil {
		for _, lg := range s.reg.LiveGraphs() {
			lag, ok := (*fn)(lg.Name())
			if !ok {
				continue
			}
			if lag.State != "" {
				if res.States == nil {
					res.States = map[string]string{}
				}
				res.States[lg.Name()] = lag.State
			}
			if lag.Unreachable {
				res.Unreachable++
				continue
			}
			if lag.LagSeq > res.LagSeq {
				res.LagSeq = lag.LagSeq
			}
			if lag.LagMs > res.LagMs {
				res.LagMs = lag.LagMs
			}
		}
	}
	return res
}

// FollowerError rejects a write addressed to a follower.
type FollowerError struct {
	// Primary is where writes belong.
	Primary string
}

// Error implements error.
func (e *FollowerError) Error() string {
	return fmt.Sprintf("lipstick: this server is a follower; send writes to the primary at %s", e.Primary)
}

// rejectFollowerWrite returns the rejection when the service is in
// follower mode.
func (s *Service) rejectFollowerWrite() error {
	if primary, ok := s.FollowerPrimary(); ok {
		return &FollowerError{Primary: primary}
	}
	return nil
}

// ReplicaStatusResult is the /v1/replica/{name}/status payload.
type ReplicaStatusResult struct {
	Name string `json:"name"`
	// Seq is the last durable sequence — the upper bound of what
	// /events will serve. AppliedSeq is the in-memory position (it can
	// run ahead of Seq while a group commit is in flight).
	Seq           uint64 `json:"seq"`
	AppliedSeq    uint64 `json:"appliedSeq"`
	CheckpointSeq uint64 `json:"checkpointSeq"`
	// Generation is the serving node's fencing epoch: a follower tailing
	// a primary whose generation fell behind its own is tailing a zombie.
	Generation uint64 `json:"generation"`
}

// ReplicaStatus reports a durable live graph's replication positions.
func (s *Service) ReplicaStatus(name string) (*ReplicaStatusResult, error) {
	lg, err := s.reg.LiveGraph(name)
	if err != nil {
		return nil, err
	}
	durable, err := lg.DurableSeq()
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return &ReplicaStatusResult{
		Name: name, Seq: durable, AppliedSeq: lg.Seq(), CheckpointSeq: lg.CheckpointSeq(),
		Generation: s.Generation(),
	}, nil
}

// defaultReplicaBatch caps one /events response when the follower does
// not ask for a bound.
const defaultReplicaBatch = 4096

// replicaRoutes wires the replication endpoints. The events and
// checkpoint responses are binary (event-batch framing / raw LPSK), so
// they bypass the JSON handle helper.
func (s *Service) replicaRoutes(mux *http.ServeMux, handle func(pattern string, fn func(r *http.Request) (any, error))) {
	handle("GET /v1/replica/{name}/status", func(r *http.Request) (any, error) {
		return s.ReplicaStatus(r.PathValue("name"))
	})

	mux.HandleFunc("GET /v1/replica/{name}/events", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		lg, err := s.reg.LiveGraph(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		q := r.URL.Query()
		from, err := strconv.ParseUint(q.Get("from"), 10, 64)
		if err != nil || from == 0 {
			writeErr(w, badRequestf("replica events: 'from' must be a sequence >= 1, got %q", q.Get("from")))
			return
		}
		max := defaultReplicaBatch
		if ms := q.Get("max"); ms != "" {
			m, merr := strconv.Atoi(ms)
			if merr != nil || m <= 0 {
				writeErr(w, badRequestf("replica events: invalid max %q", ms))
				return
			}
			max = m
		}
		events, err := lg.DurableEventsSince(from-1, max)
		if err != nil {
			var compacted *store.CompactedError
			if errors.As(err, &compacted) {
				// 410 Gone: the suffix was checkpointed away; the follower
				// re-seeds from /checkpoint.
				writeJSON(w, http.StatusGone, map[string]any{
					"error": err.Error(), "kind": "compacted",
					"name": name, "checkpointSeq": compacted.CheckpointSeq,
				})
				return
			}
			var notDurable *core.NotDurableError
			if errors.As(err, &notDurable) {
				err = badRequestf("%v", err)
			}
			writeErr(w, err)
			return
		}
		durable, _ := lg.DurableSeq() // DurableEventsSince succeeded, so the log exists
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Lipstick-Seq", strconv.FormatUint(durable, 10))
		if err := store.EncodeEventBatch(w, from, events); err != nil {
			// Headers are gone; the follower's batch decode fails and it
			// retries. Nothing useful left to write.
			return
		}
	})

	mux.HandleFunc("GET /v1/replica/{name}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		lg, err := s.reg.LiveGraph(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		path, seq, ok, err := lg.CheckpointFile()
		if err != nil {
			writeErr(w, badRequestf("%v", err))
			return
		}
		if !ok {
			writeErr(w, &core.NotFoundError{Kind: "checkpoint", Name: name})
			return
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				// Compacted between CheckpointFile and Open: a newer
				// checkpoint replaced it. The follower just asks again.
				writeErr(w, &core.NotFoundError{Kind: "checkpoint", Name: name})
				return
			}
			writeErr(w, err)
			return
		}
		defer func() { _ = f.Close() }() // opened read-only
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Lipstick-Checkpoint-Seq", strconv.FormatUint(seq, 10))
		_, _ = io.Copy(w, f) // a broken pipe mid-copy is the client's problem
	})
}

// Generation fencing. Every node carries a monotonic generation (epoch)
// token, persisted under its live directory. The failover coordinator
// promotes a follower with generation G+1; from then on the proxy stamps
// writes with X-Lipstick-Generation, so a zombie ex-primary that rejoins
// at the old generation rejects nothing silently: a stamped write hits
// it with a NEWER generation, which is proof positive it was replaced —
// it answers with a structured 409 ("fenced") and demotes itself to
// follower of the primary named in X-Lipstick-Primary. Symmetrically, a
// write stamped with an OLDER generation (a stale proxy) is rejected
// without a role change.

// generationFile is the per-node epoch persisted in the live directory.
const generationFile = "GENERATION"

// headers carrying the fencing epoch on proxied writes.
const (
	GenerationHeader = "X-Lipstick-Generation"
	PrimaryHeader    = "X-Lipstick-Primary"
)

// FencedError rejects a write whose generation token does not match the
// node's epoch — either side may be the zombie; the payload says which.
type FencedError struct {
	NodeGeneration    uint64
	RequestGeneration uint64
}

// Error implements error.
func (e *FencedError) Error() string {
	if e.RequestGeneration > e.NodeGeneration {
		return fmt.Sprintf("lipstick: this node is fenced: a newer generation %d exists (node is at %d)",
			e.RequestGeneration, e.NodeGeneration)
	}
	return fmt.Sprintf("lipstick: stale generation %d rejected (node is at %d)",
		e.RequestGeneration, e.NodeGeneration)
}

// Generation returns the node's fencing epoch (1 for a fresh node).
func (s *Service) Generation() uint64 {
	return s.replica.generation.Load()
}

// initGeneration loads the persisted epoch (default 1). Constructors
// call it; an unreadable file degrades to the default — the node then
// fences on the first stamped write, which is the safe direction.
func (s *Service) initGeneration() {
	gen := uint64(1)
	if dir := s.reg.LiveDir(); dir != "" {
		if raw, err := os.ReadFile(filepath.Join(dir, generationFile)); err == nil {
			if g, perr := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64); perr == nil && g > 0 {
				gen = g
			}
		}
	}
	s.replica.generation.Store(gen)
}

// storeGeneration adopts and persists a new epoch.
func (s *Service) storeGeneration(gen uint64) error {
	s.replica.generation.Store(gen)
	dir := s.reg.LiveDir()
	if dir == "" {
		return nil // in-memory node: the epoch lives and dies with the process
	}
	path := filepath.Join(dir, generationFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(gen, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("lipstick: persisting generation: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("lipstick: persisting generation: %w", err)
	}
	return nil
}

// SetPromoteHook installs the step a promotion runs before the role
// flips — the server wires the replica manager's Promote (stop tailing,
// deregister) here.
func (s *Service) SetPromoteHook(fn func() error) {
	s.replica.promoteHook.Store(&fn)
}

// SetDemoteHook installs the step a demotion runs before follower mode
// engages — the server wires "start a replica manager against the new
// primary" here.
func (s *Service) SetDemoteHook(fn func(primary string) error) {
	s.replica.demoteHook.Store(&fn)
}

// PromoteResult is the POST /v1/promote payload: the adopted generation
// and the durable position of every local stream at promotion time.
type PromoteResult struct {
	Generation uint64           `json:"generation"`
	Promoted   bool             `json:"promoted"`
	Streams    []StreamPosition `json:"streams,omitempty"`
}

// StreamPosition is one stream's applied position.
type StreamPosition struct {
	Name string `json:"name"`
	Seq  uint64 `json:"seq"`
}

// PromoteToPrimary adopts generation gen and, if the node is a
// follower, stops the tail (promote hook) and starts accepting writes.
// gen must exceed the node's epoch — equal or lower is fenced, which
// makes promotion idempotent-safe: a duplicate request loses.
func (s *Service) PromoteToPrimary(gen uint64) (*PromoteResult, error) {
	s.replica.roleMu.Lock()
	defer s.replica.roleMu.Unlock()
	cur := s.Generation()
	if gen <= cur {
		return nil, &FencedError{NodeGeneration: cur, RequestGeneration: gen}
	}
	if _, follower := s.FollowerPrimary(); follower {
		if hook := s.replica.promoteHook.Load(); hook != nil {
			if err := (*hook)(); err != nil {
				return nil, fmt.Errorf("lipstick: promote hook: %w", err)
			}
		}
		s.Promote()
	}
	if err := s.storeGeneration(gen); err != nil {
		return nil, err
	}
	res := &PromoteResult{Generation: gen, Promoted: true}
	for _, lg := range s.reg.LiveGraphs() {
		res.Streams = append(res.Streams, StreamPosition{Name: lg.Name(), Seq: lg.Seq()})
	}
	return res, nil
}

// DemoteResult is the POST /v1/demote payload.
type DemoteResult struct {
	Generation uint64 `json:"generation"`
	Primary    string `json:"primary"`
}

// DemoteToFollower fences the node at generation gen and turns it into
// a follower of primary — how a zombie ex-primary rejoins the cluster.
// gen below the node's epoch is fenced (a stale coordinator must not
// demote a newer primary).
func (s *Service) DemoteToFollower(primary string, gen uint64) (*DemoteResult, error) {
	if primary == "" {
		return nil, badRequestf("demote: a primary URL is required")
	}
	s.replica.roleMu.Lock()
	defer s.replica.roleMu.Unlock()
	cur := s.Generation()
	if gen < cur {
		return nil, &FencedError{NodeGeneration: cur, RequestGeneration: gen}
	}
	if p, follower := s.FollowerPrimary(); !follower || p != primary {
		if hook := s.replica.demoteHook.Load(); hook != nil {
			if err := (*hook)(primary); err != nil {
				return nil, fmt.Errorf("lipstick: demote hook: %w", err)
			}
		}
		s.SetFollower(primary)
	}
	if gen > cur {
		if err := s.storeGeneration(gen); err != nil {
			return nil, err
		}
	}
	return &DemoteResult{Generation: s.Generation(), Primary: primary}, nil
}

// fenceCheck guards a write endpoint: an unstamped request passes (a
// direct client of a single node), a matching generation passes, and a
// mismatch is a structured 409. A request carrying a NEWER generation
// additionally proves this node was replaced while it was away — it
// demotes itself to follower of the named new primary before rejecting.
func (s *Service) fenceCheck(r *http.Request) error {
	h := r.Header.Get(GenerationHeader)
	if h == "" {
		return nil
	}
	gen, err := strconv.ParseUint(h, 10, 64)
	if err != nil || gen == 0 {
		return badRequestf("bad %s header %q", GenerationHeader, h)
	}
	cur := s.Generation()
	if gen == cur {
		return nil
	}
	if gen > cur {
		if primary := r.Header.Get(PrimaryHeader); primary != "" {
			// Self-demotion may fail (hook error); the write is rejected
			// either way, and the next stamped write retries the demotion.
			_, _ = s.DemoteToFollower(primary, gen)
		}
	}
	return &FencedError{NodeGeneration: cur, RequestGeneration: gen}
}
