package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"

	"lipstick/internal/core"
	"lipstick/internal/store"
)

// Replication surface of the server. A primary exposes, per durable live
// graph:
//
//	GET /v1/replica/{name}/status            durable position + checkpoint seq
//	GET /v1/replica/{name}/events?from=N     binary event batch (catchup tail)
//	GET /v1/replica/{name}/checkpoint        newest checkpoint file (bootstrap)
//
// A follower (serve -follow) runs the same process in follower mode: it
// applies the primary's stream into its own live graphs and serves every
// read endpoint from published views, but rejects direct ingestion —
// writes belong to the primary until promotion. Live reads on a follower
// carry an X-Lipstick-Replica-Lag header (events behind the primary), and
// /v1/stats reports replicationLagSeq/replicationLagMs gauges.

// ReplicaLag describes how far one followed stream trails its primary.
type ReplicaLag struct {
	// PrimarySeq is the primary's last advertised durable sequence;
	// AppliedSeq is what this follower has applied locally.
	PrimarySeq uint64 `json:"primarySeq"`
	AppliedSeq uint64 `json:"appliedSeq"`
	// LagSeq = PrimarySeq - AppliedSeq; LagMs is the age of the last
	// successful poll of the primary (freshness of PrimarySeq itself).
	LagSeq uint64 `json:"replicationLagSeq"`
	LagMs  int64  `json:"replicationLagMs"`
}

// ReplicaLagFunc reports the replication lag of one followed stream; ok
// is false for streams this process does not follow.
type ReplicaLagFunc func(name string) (ReplicaLag, bool)

// replicaState is the Service's runtime replication role. Promotion flips
// the role while requests are in flight, so the fields are atomics.
type replicaState struct {
	primary atomic.Pointer[string]         // published via primary; non-nil = follower mode
	lagFn   atomic.Pointer[ReplicaLagFunc] // published via lagFn
}

// SetFollower puts the service in follower mode: ingestion and forced
// checkpoints are rejected with *FollowerError (writes belong to the
// primary at primaryURL) until Promote.
func (s *Service) SetFollower(primaryURL string) {
	s.replica.primary.Store(&primaryURL)
}

// Promote clears follower mode: the process accepts writes from here on.
// The caller is responsible for having stopped the follower tail first.
func (s *Service) Promote() {
	s.replica.primary.Store(nil)
}

// FollowerPrimary returns the followed primary's URL and whether the
// service is in follower mode.
func (s *Service) FollowerPrimary() (string, bool) {
	p := s.replica.primary.Load()
	if p == nil {
		return "", false
	}
	return *p, true
}

// SetReplicationLag installs the per-stream lag reporter (the replica
// manager's view); live reads and /v1/stats advertise it.
func (s *Service) SetReplicationLag(fn ReplicaLagFunc) {
	s.replica.lagFn.Store(&fn)
}

// replicaLag reports the lag of one followed stream, when known.
func (s *Service) replicaLag(name string) (ReplicaLag, bool) {
	fn := s.replica.lagFn.Load()
	if fn == nil {
		return ReplicaLag{}, false
	}
	return (*fn)(name)
}

// ReplicationStats is the /v1/stats replication section: the follower
// role plus the worst lag across followed streams (expvar mirrors live
// in the replica package).
type ReplicationStats struct {
	Follower bool   `json:"follower"`
	Primary  string `json:"primary,omitempty"`
	// LagSeq / LagMs are the maxima across followed streams: events
	// behind the primary, and the age of the freshest primary poll.
	LagSeq uint64 `json:"replicationLagSeq"`
	LagMs  int64  `json:"replicationLagMs"`
}

// replicationStats summarizes the replication role for Stats; nil when
// the process neither follows nor reports lag.
func (s *Service) replicationStats() *ReplicationStats {
	primary, follower := s.FollowerPrimary()
	fn := s.replica.lagFn.Load()
	if !follower && fn == nil {
		return nil
	}
	res := &ReplicationStats{Follower: follower, Primary: primary}
	if fn != nil {
		for _, lg := range s.reg.LiveGraphs() {
			lag, ok := (*fn)(lg.Name())
			if !ok {
				continue
			}
			if lag.LagSeq > res.LagSeq {
				res.LagSeq = lag.LagSeq
			}
			if lag.LagMs > res.LagMs {
				res.LagMs = lag.LagMs
			}
		}
	}
	return res
}

// FollowerError rejects a write addressed to a follower.
type FollowerError struct {
	// Primary is where writes belong.
	Primary string
}

// Error implements error.
func (e *FollowerError) Error() string {
	return fmt.Sprintf("lipstick: this server is a follower; send writes to the primary at %s", e.Primary)
}

// rejectFollowerWrite returns the rejection when the service is in
// follower mode.
func (s *Service) rejectFollowerWrite() error {
	if primary, ok := s.FollowerPrimary(); ok {
		return &FollowerError{Primary: primary}
	}
	return nil
}

// ReplicaStatusResult is the /v1/replica/{name}/status payload.
type ReplicaStatusResult struct {
	Name string `json:"name"`
	// Seq is the last durable sequence — the upper bound of what
	// /events will serve. AppliedSeq is the in-memory position (it can
	// run ahead of Seq while a group commit is in flight).
	Seq           uint64 `json:"seq"`
	AppliedSeq    uint64 `json:"appliedSeq"`
	CheckpointSeq uint64 `json:"checkpointSeq"`
}

// ReplicaStatus reports a durable live graph's replication positions.
func (s *Service) ReplicaStatus(name string) (*ReplicaStatusResult, error) {
	lg, err := s.reg.LiveGraph(name)
	if err != nil {
		return nil, err
	}
	durable, err := lg.DurableSeq()
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return &ReplicaStatusResult{
		Name: name, Seq: durable, AppliedSeq: lg.Seq(), CheckpointSeq: lg.CheckpointSeq(),
	}, nil
}

// defaultReplicaBatch caps one /events response when the follower does
// not ask for a bound.
const defaultReplicaBatch = 4096

// replicaRoutes wires the replication endpoints. The events and
// checkpoint responses are binary (event-batch framing / raw LPSK), so
// they bypass the JSON handle helper.
func (s *Service) replicaRoutes(mux *http.ServeMux, handle func(pattern string, fn func(r *http.Request) (any, error))) {
	handle("GET /v1/replica/{name}/status", func(r *http.Request) (any, error) {
		return s.ReplicaStatus(r.PathValue("name"))
	})

	mux.HandleFunc("GET /v1/replica/{name}/events", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		lg, err := s.reg.LiveGraph(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		q := r.URL.Query()
		from, err := strconv.ParseUint(q.Get("from"), 10, 64)
		if err != nil || from == 0 {
			writeErr(w, badRequestf("replica events: 'from' must be a sequence >= 1, got %q", q.Get("from")))
			return
		}
		max := defaultReplicaBatch
		if ms := q.Get("max"); ms != "" {
			m, merr := strconv.Atoi(ms)
			if merr != nil || m <= 0 {
				writeErr(w, badRequestf("replica events: invalid max %q", ms))
				return
			}
			max = m
		}
		events, err := lg.DurableEventsSince(from-1, max)
		if err != nil {
			var compacted *store.CompactedError
			if errors.As(err, &compacted) {
				// 410 Gone: the suffix was checkpointed away; the follower
				// re-seeds from /checkpoint.
				writeJSON(w, http.StatusGone, map[string]any{
					"error": err.Error(), "kind": "compacted",
					"name": name, "checkpointSeq": compacted.CheckpointSeq,
				})
				return
			}
			var notDurable *core.NotDurableError
			if errors.As(err, &notDurable) {
				err = badRequestf("%v", err)
			}
			writeErr(w, err)
			return
		}
		durable, _ := lg.DurableSeq() // DurableEventsSince succeeded, so the log exists
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Lipstick-Seq", strconv.FormatUint(durable, 10))
		if err := store.EncodeEventBatch(w, from, events); err != nil {
			// Headers are gone; the follower's batch decode fails and it
			// retries. Nothing useful left to write.
			return
		}
	})

	mux.HandleFunc("GET /v1/replica/{name}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		lg, err := s.reg.LiveGraph(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		path, seq, ok, err := lg.CheckpointFile()
		if err != nil {
			writeErr(w, badRequestf("%v", err))
			return
		}
		if !ok {
			writeErr(w, &core.NotFoundError{Kind: "checkpoint", Name: name})
			return
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				// Compacted between CheckpointFile and Open: a newer
				// checkpoint replaced it. The follower just asks again.
				writeErr(w, &core.NotFoundError{Kind: "checkpoint", Name: name})
				return
			}
			writeErr(w, err)
			return
		}
		defer func() { _ = f.Close() }() // opened read-only
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Lipstick-Checkpoint-Seq", strconv.FormatUint(seq, 10))
		_, _ = io.Copy(w, f) // a broken pipe mid-copy is the client's problem
	})
}
