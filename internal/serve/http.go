package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os"
)

// Handler returns the HTTP interface of the query service for one
// snapshot file: every CLI query subcommand as a GET endpoint with a JSON
// response (DOT excepted — it answers Graphviz text).
//
//	GET /healthz                 liveness + snapshot path
//	GET /v1/info                 graph statistics
//	GET /v1/outputs              recorded output relations
//	GET /v1/zoom?module=M1&module=M2   coarse view of the given modules
//	GET /v1/delete?node=42       what-if deletion propagation
//	GET /v1/subgraph?node=42     subgraph query
//	GET /v1/lineage?node=42      classified ancestry + provenance expression
//	GET /v1/find?type=tuple&op=agg&label=L&module=M&class=p   node selection
//	GET /v1/dot                  Graphviz DOT (text/vnd.graphviz)
//	GET /v1/opm                  Open Provenance Model JSON
//	GET /v1/json                 full snapshot as JSON
//
// The snapshot is resolved through the service's SnapshotManager on every
// request, so a snapshot replaced on disk is picked up without a restart,
// and the common case is answered from the cached indexed processor.
func (s *Service) Handler(snapshot string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "snapshot": snapshot})
	})
	get := func(pattern string, fn func(r *http.Request) (any, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				writeError(w, http.StatusMethodNotAllowed, "method not allowed")
				return
			}
			res, err := fn(r)
			if err != nil {
				writeError(w, statusFor(err), err.Error())
				return
			}
			writeJSON(w, http.StatusOK, res)
		})
	}
	get("/v1/info", func(*http.Request) (any, error) { return s.Info(snapshot) })
	get("/v1/outputs", func(*http.Request) (any, error) { return s.Outputs(snapshot) })
	get("/v1/zoom", func(r *http.Request) (any, error) {
		return s.Zoom(snapshot, r.URL.Query()["module"]...)
	})
	get("/v1/delete", func(r *http.Request) (any, error) {
		return s.Delete(snapshot, r.URL.Query().Get("node"))
	})
	get("/v1/subgraph", func(r *http.Request) (any, error) {
		return s.Subgraph(snapshot, r.URL.Query().Get("node"))
	})
	get("/v1/lineage", func(r *http.Request) (any, error) {
		return s.Lineage(snapshot, r.URL.Query().Get("node"))
	})
	get("/v1/find", func(r *http.Request) (any, error) {
		q := r.URL.Query()
		return s.Find(snapshot, FindRequest{
			Classes: q["class"],
			Types:   q["type"],
			Ops:     q["op"],
			Label:   q.Get("label"),
			Module:  q.Get("module"),
		})
	})

	stream := func(pattern, contentType string, fn func(w *bytes.Buffer) error) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				writeError(w, http.StatusMethodNotAllowed, "method not allowed")
				return
			}
			// Buffered so an export error still yields a proper status.
			var buf bytes.Buffer
			if err := fn(&buf); err != nil {
				writeError(w, statusFor(err), err.Error())
				return
			}
			w.Header().Set("Content-Type", contentType)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(buf.Bytes())
		})
	}
	stream("/v1/dot", "text/vnd.graphviz; charset=utf-8", func(buf *bytes.Buffer) error {
		return s.WriteDOT(snapshot, buf)
	})
	stream("/v1/opm", "application/json; charset=utf-8", func(buf *bytes.Buffer) error {
		return s.WriteOPM(snapshot, buf)
	})
	stream("/v1/json", "application/json; charset=utf-8", func(buf *bytes.Buffer) error {
		return s.WriteJSON(snapshot, buf)
	})
	return mux
}

// statusFor maps service errors to HTTP statuses: argument problems are
// 400s, a missing snapshot is a 404, everything else (corrupt snapshot,
// I/O) a 500.
func statusFor(err error) int {
	var bad *BadRequestError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case os.IsNotExist(err):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
