package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lipstick/internal/core"
)

// Handler returns the HTTP interface of the query service: the classic
// single-snapshot endpoints, the snapshot registry, and copy-on-write
// mutation sessions.
//
// Read-only queries (answered from the shared cached processor):
//
//	GET /healthz                 liveness + registry counters
//	GET /v1/info                 graph statistics (default snapshot)
//	GET /v1/outputs              recorded output relations
//	GET /v1/zoom?module=M1&module=M2   coarse view, computed on an overlay
//	GET /v1/delete?node=42       what-if deletion propagation
//	GET /v1/subgraph?node=42     subgraph query
//	GET /v1/lineage?node=42      classified ancestry + provenance expression
//	GET /v1/find?type=tuple&op=agg&label=L&module=M&class=p   node selection
//	GET /v1/dot | /v1/opm | /v1/json   exports
//
// Registry (many snapshots per process, routed by name; live graphs
// under ingestion answer the same queries as static snapshots):
//
//	GET /v1/snapshots                     list snapshots (static + live)
//	GET /v1/snapshots/{name}/<query>      any read query above, by name
//	GET /v1/stats                         operational metrics (expvar-backed)
//
// Streaming ingestion (ordered event batches into named live graphs,
// idempotent by sequence number; every read endpoint answers mid-ingest):
//
//	POST /v1/ingest/{name}               binary event batch -> {seq, applied}
//	GET  /v1/ingest/{name}               stream position (sender resync)
//	POST /v1/ingest/{name}/checkpoint    force a WAL checkpoint (durable)
//
// Sessions (mutable what-if views; each costs O(changes) over the shared
// base graph):
//
//	POST   /v1/sessions                   {"snapshot": name} -> session
//	GET    /v1/sessions                   list live sessions
//	GET    /v1/sessions/{id}              session info
//	POST   /v1/sessions/{id}/zoom         {"modules": [...]} or {"in": true}
//	POST   /v1/sessions/{id}/delete       {"nodes": [42], "whatIf": false}
//	POST   /v1/sessions/{id}/fork         clone the session's deltas
//	GET    /v1/sessions/{id}/find         session-scoped node selection
//	GET    /v1/sessions/{id}/subgraph     session-scoped subgraph
//	GET    /v1/sessions/{id}/lineage      session-scoped lineage
//	GET    /v1/sessions/{id}/dot          session view as Graphviz DOT
//	DELETE /v1/sessions/{id}              discard the session
//
// The default snapshot (the Handler argument, registered under its base
// name) backs the flat /v1/* read endpoints; when the handler is built
// without one (`lipstick serve -dir`), those endpoints answer only while
// exactly one snapshot is registered, and name-routed queries otherwise.
// Snapshots are resolved through the service's SnapshotManager on every
// request, so a snapshot replaced on disk is picked up without a restart.
func (s *Service) Handler(snapshot string) http.Handler {
	if snapshot != "" {
		// Surface the default snapshot in the registry; a name collision
		// (e.g. an identically named file already scanned from a dir)
		// falls back to serving it unregistered via the flat endpoints.
		_ = s.reg.Register(core.SnapshotName(snapshot), snapshot)
	}
	// defaultRun resolves the flat /v1/* endpoints' target at request
	// time: the explicit default snapshot, else the only registered
	// static snapshot, else the only live graph.
	defaultRun := func() (runFn, error) {
		if snapshot != "" {
			return s.pathRun(snapshot), nil
		}
		if only, ok := s.reg.Single(); ok {
			return s.pathRun(only.Path), nil
		}
		if lg, ok := s.reg.SingleLive(); ok {
			return lg.Read, nil
		}
		return nil, badRequestf("no default snapshot: address one by name via /v1/snapshots/{name}/...")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, follower := s.FollowerPrimary()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"snapshot":   snapshot,
			"snapshots":  s.reg.NumSnapshots(),
			"sessions":   s.reg.NumSessions(),
			"generation": s.Generation(),
			"follower":   follower,
		})
	})

	handle := func(pattern string, fn func(r *http.Request) (any, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			res, err := fn(r)
			if err != nil {
				writeErr(w, err)
				return
			}
			if res == nil {
				res = map[string]string{"status": "ok"}
			}
			writeJSON(w, http.StatusOK, res)
		})
	}

	// resolveRun picks the request's target: a name-routed live graph or
	// static snapshot, else the default.
	resolveRun := func(r *http.Request) (runFn, error) {
		if name := r.PathValue("name"); name != "" {
			return s.targetRun(name)
		}
		return defaultRun()
	}

	// resolveLive returns the live graph a request targets, when it does
	// (name-routed, or the default resolving to the only live graph) —
	// the targets whose responses are seq-stamped and cacheable. Its
	// precedence mirrors resolveRun exactly.
	resolveLive := func(r *http.Request) (*core.LiveGraph, bool) {
		if name := r.PathValue("name"); name != "" {
			lg, err := s.reg.LiveGraph(name)
			return lg, err == nil
		}
		if snapshot == "" {
			if _, ok := s.reg.Single(); !ok {
				if lg, ok := s.reg.SingleLive(); ok {
					return lg, true
				}
			}
		}
		return nil, false
	}

	// Flat read endpoints over the default target, plus the same queries
	// routed by registered name — answered identically from a static
	// snapshot's cached processor or a live graph mid-ingest.
	//
	// Live targets take the lock-free path: the newest published view
	// answers, the response carries its sequence in X-Lipstick-Seq, and
	// the marshaled body is cached keyed by (graph, seq, endpoint,
	// normalized query) — a view is immutable, so a hit is exact by
	// construction and skips both the query and the JSON encode.
	query := func(suffix string, fn func(r *http.Request, qp *core.QueryProcessor) (any, error)) {
		for _, pattern := range []string{"GET /v1/" + suffix, "GET /v1/snapshots/{name}/" + suffix} {
			mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
				start := time.Now()
				defer func() { core.ObserveQueryLatency(time.Since(start)) }()
				if lg, ok := resolveLive(r); ok {
					v := lg.ReadView()
					w.Header().Set("X-Lipstick-Seq", strconv.FormatUint(v.Seq, 10))
					if lag, ok := s.replicaLag(lg.Name()); ok {
						w.Header().Set("X-Lipstick-Replica-Lag", strconv.FormatUint(lag.LagSeq, 10))
					}
					key := queryCacheKey(lg.Name(), v.Seq, suffix, r.URL.Query())
					if body, ok := s.cache.Get(key); ok {
						w.Header().Set("X-Lipstick-Cache", "hit")
						writeJSONBody(w, http.StatusOK, body)
						return
					}
					res, err := fn(r, v.QP)
					if err != nil {
						writeErr(w, err)
						return
					}
					if res == nil {
						res = map[string]string{"status": "ok"}
					}
					body, err := encodeJSONBody(res)
					if err != nil {
						writeErr(w, err)
						return
					}
					s.cache.Put(key, body)
					writeJSONBody(w, http.StatusOK, body)
					return
				}
				run, err := resolveRun(r)
				if err != nil {
					writeErr(w, err)
					return
				}
				var res any
				err = run(func(qp *core.QueryProcessor) error {
					var qerr error
					res, qerr = fn(r, qp)
					return qerr
				})
				if err != nil {
					writeErr(w, err)
					return
				}
				if res == nil {
					res = map[string]string{"status": "ok"}
				}
				writeJSON(w, http.StatusOK, res)
			})
		}
	}
	query("info", func(r *http.Request, qp *core.QueryProcessor) (any, error) { return infoOf(qp) })
	query("outputs", func(r *http.Request, qp *core.QueryProcessor) (any, error) { return outputsOf(qp) })
	query("zoom", func(r *http.Request, qp *core.QueryProcessor) (any, error) {
		return zoomOf(qp, r.URL.Query()["module"]...)
	})
	query("delete", func(r *http.Request, qp *core.QueryProcessor) (any, error) {
		return deleteOf(qp, r.URL.Query().Get("node"))
	})
	query("subgraph", func(r *http.Request, qp *core.QueryProcessor) (any, error) {
		return subgraphOf(qp, r.URL.Query().Get("node"))
	})
	query("lineage", func(r *http.Request, qp *core.QueryProcessor) (any, error) {
		return lineageOf(qp, r.URL.Query().Get("node"))
	})
	query("find", func(r *http.Request, qp *core.QueryProcessor) (any, error) {
		return findOf(qp, findRequestOf(r))
	})

	// Registry and operational metrics.
	handle("GET /v1/snapshots", func(*http.Request) (any, error) { return s.Snapshots(), nil })
	handle("GET /v1/stats", func(*http.Request) (any, error) { return s.Stats(), nil })

	// Replication: status/events/checkpoint reads a follower tails.
	s.replicaRoutes(mux, handle)

	// Streaming ingestion: binary event batches into named live graphs.
	// Writes are generation-fenced: a stamped request whose epoch does
	// not match this node's is rejected 409 (see fenceCheck).
	handle("POST /v1/ingest/{name}", func(r *http.Request) (any, error) {
		if err := s.fenceCheck(r); err != nil {
			return nil, err
		}
		return s.Ingest(r.PathValue("name"), http.MaxBytesReader(nil, r.Body, maxIngestBytes))
	})
	handle("GET /v1/ingest/{name}", func(r *http.Request) (any, error) {
		return s.IngestStatus(r.PathValue("name"))
	})
	handle("POST /v1/ingest/{name}/checkpoint", func(r *http.Request) (any, error) {
		if err := s.fenceCheck(r); err != nil {
			return nil, err
		}
		return s.CheckpointLive(r.PathValue("name"))
	})

	// Failover control plane: the coordinator promotes the most
	// caught-up follower with a bumped generation and demotes a zombie
	// ex-primary back to follower.
	handle("POST /v1/promote", func(r *http.Request) (any, error) {
		var req struct {
			Generation uint64 `json:"generation"`
		}
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
		return s.PromoteToPrimary(req.Generation)
	})
	handle("POST /v1/demote", func(r *http.Request) (any, error) {
		var req struct {
			Generation uint64 `json:"generation"`
			Primary    string `json:"primary"`
		}
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
		return s.DemoteToFollower(req.Primary, req.Generation)
	})

	// Chaos endpoints (opt-in via serve -chaos): remote-controlled
	// failpoints and a kill switch for the schedule runner.
	s.chaosRoutes(handle)

	// Session lifecycle and transformations.
	handle("POST /v1/sessions", func(r *http.Request) (any, error) {
		var req struct {
			Snapshot string `json:"snapshot"`
		}
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
		return s.CreateSession(req.Snapshot)
	})
	handle("GET /v1/sessions", func(*http.Request) (any, error) { return s.Sessions(), nil })
	handle("GET /v1/sessions/{id}", func(r *http.Request) (any, error) {
		return s.SessionInfo(r.PathValue("id"))
	})
	handle("DELETE /v1/sessions/{id}", func(r *http.Request) (any, error) {
		if err := s.CloseSession(r.PathValue("id")); err != nil {
			return nil, err
		}
		return map[string]string{"status": "closed", "session": r.PathValue("id")}, nil
	})
	handle("POST /v1/sessions/{id}/zoom", func(r *http.Request) (any, error) {
		var req SessionZoomRequest
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
		return s.SessionZoom(r.PathValue("id"), req)
	})
	handle("POST /v1/sessions/{id}/delete", func(r *http.Request) (any, error) {
		var req SessionDeleteRequest
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
		return s.SessionDelete(r.PathValue("id"), req)
	})
	handle("POST /v1/sessions/{id}/fork", func(r *http.Request) (any, error) {
		return s.ForkSession(r.PathValue("id"))
	})
	handle("GET /v1/sessions/{id}/find", func(r *http.Request) (any, error) {
		return s.SessionFind(r.PathValue("id"), findRequestOf(r))
	})
	handle("GET /v1/sessions/{id}/subgraph", func(r *http.Request) (any, error) {
		return s.SessionSubgraph(r.PathValue("id"), r.URL.Query().Get("node"))
	})
	handle("GET /v1/sessions/{id}/lineage", func(r *http.Request) (any, error) {
		return s.SessionLineage(r.PathValue("id"), r.URL.Query().Get("node"))
	})

	// Streaming exports (buffered so an export error still yields a
	// proper status).
	stream := func(pattern, contentType string, fn func(r *http.Request, w *bytes.Buffer) error) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			var buf bytes.Buffer
			if err := fn(r, &buf); err != nil {
				writeErr(w, err)
				return
			}
			w.Header().Set("Content-Type", contentType)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(buf.Bytes())
		})
	}
	// Exports resolve live targets through the published view too (and
	// stamp X-Lipstick-Seq), but their bodies — whole-graph DOT/OPM/JSON
	// dumps — are not worth holding in the query cache.
	export := func(suffix, contentType string, fn func(qp *core.QueryProcessor, w io.Writer) error) {
		for _, pattern := range []string{"GET /v1/" + suffix, "GET /v1/snapshots/{name}/" + suffix} {
			mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
				start := time.Now()
				defer func() { core.ObserveQueryLatency(time.Since(start)) }()
				var buf bytes.Buffer
				if lg, ok := resolveLive(r); ok {
					v := lg.ReadView()
					w.Header().Set("X-Lipstick-Seq", strconv.FormatUint(v.Seq, 10))
					if lag, ok := s.replicaLag(lg.Name()); ok {
						w.Header().Set("X-Lipstick-Replica-Lag", strconv.FormatUint(lag.LagSeq, 10))
					}
					if err := fn(v.QP, &buf); err != nil {
						writeErr(w, err)
						return
					}
				} else {
					run, err := resolveRun(r)
					if err != nil {
						writeErr(w, err)
						return
					}
					err = run(func(qp *core.QueryProcessor) error { return fn(qp, &buf) })
					if err != nil {
						writeErr(w, err)
						return
					}
				}
				w.Header().Set("Content-Type", contentType)
				w.WriteHeader(http.StatusOK)
				_, _ = w.Write(buf.Bytes())
			})
		}
	}
	export("dot", "text/vnd.graphviz; charset=utf-8", writeDOTOf)
	export("opm", "application/json; charset=utf-8", writeOPMOf)
	export("json", "application/json; charset=utf-8", writeJSONOf)
	stream("GET /v1/sessions/{id}/dot", "text/vnd.graphviz; charset=utf-8",
		func(r *http.Request, buf *bytes.Buffer) error {
			return s.SessionDOT(r.PathValue("id"), buf)
		})

	// Method-pattern muxes answer a wrong-method hit with a plain 405;
	// wrap to keep the JSON error contract.
	return jsonErrorMiddleware(mux)
}

// findRequestOf decodes the shared find query parameters.
func findRequestOf(r *http.Request) FindRequest {
	q := r.URL.Query()
	return FindRequest{
		Classes: q["class"],
		Types:   q["type"],
		Ops:     q["op"],
		Label:   q.Get("label"),
		Module:  q.Get("module"),
	}
}

// maxBodyBytes caps request bodies; the session API's JSON bodies are a
// few names or node ids, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// maxIngestBytes caps one ingest batch. Senders flush every few hundred
// events, so 32 MiB leaves room for value-heavy streams.
const maxIngestBytes = 32 << 20

// decodeJSON parses a size-bounded request body as JSON into v; an
// empty body leaves v zero-valued.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return badRequestf("invalid JSON body: %v", err)
	}
	return nil
}

// jsonErrorMiddleware rewrites the mux's plain-text 404/405 fallbacks
// into the service's JSON error shape.
func jsonErrorMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusCaptureWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
	})
}

// statusCaptureWriter swaps the body of plain-text error fallbacks
// (route not found, method not allowed) for the JSON error shape while
// passing every handler-produced response through untouched.
type statusCaptureWriter struct {
	http.ResponseWriter
	intercept bool
}

func (w *statusCaptureWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		w.Header().Get("Content-Type") != "application/json; charset=utf-8" {
		// The mux's own fallback: replace the plain-text body.
		w.intercept = true
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(status)
		msg := "not found"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		body, _ := json.Marshal(map[string]string{"error": msg})
		_, _ = w.ResponseWriter.Write(append(body, '\n'))
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusCaptureWriter) Write(p []byte) (int, error) {
	if w.intercept {
		// Swallow the plain-text fallback body; report it as written.
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

// statusFor maps service errors to HTTP statuses: argument problems are
// 400s, unknown snapshot names / session ids / missing snapshot files
// are 404s, ingest sequence gaps are 409s, a full ingest queue is a 429,
// everything else (corrupt snapshot, I/O) a 500.
func statusFor(err error) int {
	var bad *BadRequestError
	var name *core.NameError
	var nf *core.NotFoundError
	var gap *core.SeqGapError
	var over *core.OverloadedError
	var fol *FollowerError
	var fenced *FencedError
	switch {
	case errors.As(err, &fenced):
		// 409 like an ingest gap: the request and the node disagree about
		// cluster state, and retrying verbatim cannot help.
		return http.StatusConflict
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.As(err, &name):
		return http.StatusBadRequest
	case errors.As(err, &nf):
		return http.StatusNotFound
	case errors.As(err, &gap):
		return http.StatusConflict
	case errors.As(err, &over):
		return http.StatusTooManyRequests
	case errors.As(err, &fol):
		// 403, not 429/503: follower rejections are not retryable on this
		// node — the client must redirect writes to the primary.
		return http.StatusForbidden
	case os.IsNotExist(err):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// overloadRetryAfter is the Retry-After hint on 429s: admission queues
// drain at fsync cadence, so a client backing off for about a second
// rejoins a healthy queue.
const overloadRetryAfter = "1"

// writeErr renders an error with its mapped status. Registry misses
// (unknown snapshot name, unknown session id) carry a structured body:
// {"error": ..., "kind": "snapshot"|"session", "name": ...}; ingest gaps
// carry the stream's expected sequence so senders can resync.
func writeErr(w http.ResponseWriter, err error) {
	var nf *core.NotFoundError
	if errors.As(err, &nf) {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": err.Error(), "kind": nf.Kind, "name": nf.Name,
		})
		return
	}
	var gap *core.SeqGapError
	if errors.As(err, &gap) {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(), "kind": "ingest-gap", "name": gap.Name,
			"expected": gap.Expected, "got": gap.Got,
		})
		return
	}
	var over *core.OverloadedError
	if errors.As(err, &over) {
		w.Header().Set("Retry-After", overloadRetryAfter)
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": err.Error(), "kind": "overloaded", "name": over.Name,
			"depth": over.Depth,
		})
		return
	}
	var fol *FollowerError
	if errors.As(err, &fol) {
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": err.Error(), "kind": "follower", "primary": fol.Primary,
		})
		return
	}
	var fenced *FencedError
	if errors.As(err, &fenced) {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(), "kind": "fenced",
			"nodeGeneration": fenced.NodeGeneration, "requestGeneration": fenced.RequestGeneration,
		})
		return
	}
	writeError(w, statusFor(err), err.Error())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// encodeJSONBody marshals v exactly as writeJSON would stream it
// (unescaped HTML, trailing newline), yielding the byte body the query
// cache stores — a hit replays the identical response.
func encodeJSONBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeJSONBody writes a pre-encoded JSON body.
func writeJSONBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// queryCacheKey normalizes a request into its cache identity:
// graph name, view sequence, endpoint, and the query parameters with
// KEYS sorted but each key's values kept in request order. Key order is
// irrelevant to every handler, so ?a=1&b=2 and ?b=2&a=1 share an entry;
// value order is observable (ZoomResult echoes modules in request
// order), so ?module=A&module=B and ?module=B&module=A must not.
func queryCacheKey(name string, seq uint64, suffix string, q url.Values) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte(0)
	b.WriteString(strconv.FormatUint(seq, 10))
	b.WriteByte(0)
	b.WriteString(suffix)
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range q[k] {
			b.WriteByte(0)
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	return b.String()
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
