package serve

import (
	"net/http"
	"os"
	"time"

	"lipstick/internal/faultinject"
)

// Chaos control plane, opt-in via EnableChaos (the `serve -chaos` flag)
// and meant for test topologies only: it lets a schedule runner arm
// failpoints in a remote process and kill it mid-stream.
//
//	POST /v1/chaos/fault   {"action":"arm"|"disarm"|"reset", "point":..., ...}
//	GET  /v1/chaos/points  {"points": [...]}
//	POST /v1/chaos/kill    {"status":"dying"} — then the process exits 137
//
// EnableChaos must be called before Handler builds the mux.

// chaosExitDelay gives the kill response time to flush before exit.
const chaosExitDelay = 150 * time.Millisecond

// EnableChaos turns the chaos endpoints on. exit overrides os.Exit for
// tests; nil selects os.Exit.
func (s *Service) EnableChaos(exit func(code int)) {
	if exit == nil {
		exit = os.Exit
	}
	s.chaosExit = exit
}

// chaosRoutes registers the chaos endpoints when EnableChaos was called.
func (s *Service) chaosRoutes(handle func(pattern string, fn func(r *http.Request) (any, error))) {
	if s.chaosExit == nil {
		return
	}
	handle("POST /v1/chaos/fault", func(r *http.Request) (any, error) {
		var spec faultinject.FaultSpec
		if err := decodeJSON(r, &spec); err != nil {
			return nil, err
		}
		if err := spec.Apply(); err != nil {
			return nil, badRequestf("%v", err)
		}
		return map[string]any{"status": "ok", "points": faultinject.Active()}, nil
	})
	handle("GET /v1/chaos/points", func(*http.Request) (any, error) {
		return map[string]any{"points": faultinject.Active()}, nil
	})
	handle("POST /v1/chaos/kill", func(*http.Request) (any, error) {
		exit := s.chaosExit
		go func() {
			time.Sleep(chaosExitDelay)
			exit(137)
		}()
		return map[string]string{"status": "dying"}, nil
	})
}
