package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"lipstick/internal/testutil"
)

// fetchRaw returns a response's status, X-Lipstick-* headers, and body.
func fetchRaw(t *testing.T, srv *httptest.Server, path string) (status int, seq, cache string, body []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Lipstick-Seq"), resp.Header.Get("X-Lipstick-Cache"), body
}

// TestLiveQuerySeqHeaderAndCache pins the lock-free read path's serving
// contract: live-target responses carry the answering view's sequence in
// X-Lipstick-Seq, a repeated query at the same sequence is a cache hit
// with a byte-identical body, and the cache key normalizes query-param
// KEY order while preserving value order (module order is observable in
// zoom responses).
func TestLiveQuerySeqHeaderAndCache(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, events := captureRun(t)
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()

	postBatch(t, srv, "stream", 1, events)

	status, seq, cache, body1 := fetchRaw(t, srv, "/v1/snapshots/stream/find?type=tuple&op=agg")
	if status != http.StatusOK {
		t.Fatalf("find returned %d", status)
	}
	if want := strconv.Itoa(len(events)); seq != want {
		t.Fatalf("X-Lipstick-Seq = %q, want %q", seq, want)
	}
	if cache != "" {
		t.Fatalf("first query marked X-Lipstick-Cache=%q", cache)
	}

	// Same query, same sequence: a hit, byte-identical.
	_, seq2, cache2, body2 := fetchRaw(t, srv, "/v1/snapshots/stream/find?type=tuple&op=agg")
	if seq2 != seq {
		t.Fatalf("stable graph changed seq: %q then %q", seq, seq2)
	}
	if cache2 != "hit" {
		t.Fatalf("repeat query X-Lipstick-Cache = %q, want \"hit\"", cache2)
	}
	if string(body1) != string(body2) {
		t.Fatal("cache hit body differs from the computed body")
	}

	// Key order is normalized: swapped parameter keys share the entry.
	_, _, cache3, body3 := fetchRaw(t, srv, "/v1/snapshots/stream/find?op=agg&type=tuple")
	if cache3 != "hit" {
		t.Fatalf("key-reordered query X-Lipstick-Cache = %q, want \"hit\"", cache3)
	}
	if string(body1) != string(body3) {
		t.Fatal("key-reordered query body differs")
	}

	// Value order is NOT normalized: zoom echoes modules in request
	// order, so swapped values must be distinct entries with distinct
	// bodies.
	_, _, _, zoomAB := fetchRaw(t, srv, "/v1/snapshots/stream/zoom?module=M_dealer1&module=M_dealer2")
	_, _, zoomCache, zoomBA := fetchRaw(t, srv, "/v1/snapshots/stream/zoom?module=M_dealer2&module=M_dealer1")
	if zoomCache == "hit" {
		t.Fatal("value-reordered zoom served from the other order's cache entry")
	}
	if string(zoomAB) == string(zoomBA) {
		t.Fatal("zoom bodies identical despite swapped module order (expected order echoed)")
	}

	// The default-target route resolves the same live graph: seq-stamped
	// there too.
	_, flatSeq, _, _ := fetchRaw(t, srv, "/v1/info")
	if flatSeq != seq {
		t.Fatalf("flat route X-Lipstick-Seq = %q, want %q", flatSeq, seq)
	}

	// Ingesting more events moves the sequence, which changes the key:
	// the next read recomputes instead of serving the stale entry.
	postBatch(t, srv, "stream", uint64(len(events))+1, events[:0])
	var stats StatsResult
	if code := fetchJSON(t, srv, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.Queries.CacheEntries == 0 {
		t.Fatal("stats report zero cache entries after cached queries")
	}
	if stats.Queries.Count == 0 {
		t.Fatal("stats report zero observed queries")
	}
}
