// Package serve is the transport-agnostic query handler layer of the
// Lipstick Query Processor: one Service answers every query the system
// supports (info, outputs, zoom, delete, subgraph, lineage, find, plus
// the DOT/OPM/JSON exports) with structured results, backed by a
// core.SnapshotManager so repeated queries against the same snapshot hit
// a cached, indexed processor instead of reloading from disk. The
// `lipstick` CLI subcommands and the `lipstick serve` HTTP endpoints are
// both thin callers of this layer.
package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"lipstick/internal/core"
	"lipstick/internal/opm"
	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

// Service answers provenance queries against snapshot files, caching
// loaded processors between calls, and manages the registry of named
// snapshots plus their copy-on-write mutation sessions. It is safe for
// concurrent use: every read handler treats the shared cached processor
// as read-only; transformations (zoom previews, session zoom/delete)
// work on overlays, never on the shared graph.
type Service struct {
	mgr *core.SnapshotManager
	reg *core.Registry
	// cache holds marshaled query responses keyed by (graph, published
	// sequence, endpoint, normalized query) — correct by construction
	// over immutable views, so it needs no invalidation hooks.
	cache *core.QueryCache
	// replica is the runtime replication role (follower mode, lag
	// reporter); see replica.go.
	replica replicaState
	// chaosExit enables the chaos endpoints (see chaos.go); set once via
	// EnableChaos before Handler builds the mux, nil keeps them off.
	chaosExit func(code int)
}

// NewService builds a service over the given snapshot cache; a nil
// manager gets a private cache of default capacity. The service's
// registry uses default session TTL and cap — use NewRegistryService to
// tune them.
func NewService(mgr *core.SnapshotManager) *Service {
	if mgr == nil {
		mgr = core.NewSnapshotManager(0)
	}
	s := &Service{mgr: mgr, reg: core.NewRegistry(mgr), cache: core.NewQueryCache(0, 0)}
	s.initGeneration()
	return s
}

// NewRegistryService builds a service over an existing snapshot registry
// (and its snapshot cache).
func NewRegistryService(reg *core.Registry) *Service {
	s := &Service{mgr: reg.Manager(), reg: reg, cache: core.NewQueryCache(0, 0)}
	s.initGeneration()
	return s
}

// Manager exposes the underlying snapshot cache.
func (s *Service) Manager() *core.SnapshotManager { return s.mgr }

// Registry exposes the snapshot/session registry.
func (s *Service) Registry() *core.Registry { return s.reg }

// BadRequestError marks failures caused by the request's arguments
// (unknown module, malformed node id, ...) as opposed to snapshot I/O
// errors; the HTTP layer maps it to a 400.
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }

func badRequestf(format string, args ...any) error {
	return &BadRequestError{Msg: fmt.Sprintf(format, args...)}
}

func (s *Service) open(path string) (*core.QueryProcessor, error) {
	return s.mgr.Open(path)
}

// parseNode resolves a node-id argument against a view's slot range.
func parseNode(total int, arg string) (provgraph.NodeID, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 || n >= total {
		return 0, badRequestf("invalid node id %q (graph has %d nodes)", arg, total)
	}
	return provgraph.NodeID(n), nil
}

// InfoResult summarizes a snapshot's graph.
type InfoResult struct {
	Nodes       int            `json:"nodes"`
	PNodes      int            `json:"pNodes"`
	VNodes      int            `json:"vNodes"`
	Edges       int            `json:"edges"`
	Invocations int            `json:"invocations"`
	ByType      map[string]int `json:"byType"`
}

// Info returns graph statistics.
func (s *Service) Info(path string) (*InfoResult, error) {
	qp, err := s.open(path)
	if err != nil {
		return nil, err
	}
	return infoOf(qp)
}

// infoOf summarizes any processor's graph (static snapshot or live).
func infoOf(qp *core.QueryProcessor) (*InfoResult, error) {
	st := qp.Graph().ComputeStats()
	byType := make(map[string]int, len(st.ByType))
	for t, n := range st.ByType {
		byType[t.String()] = n
	}
	return &InfoResult{
		Nodes: st.Nodes, PNodes: st.PNodes, VNodes: st.VNodes,
		Edges: st.Edges, Invocations: st.Invocations, ByType: byType,
	}, nil
}

// TupleResult is one annotated output tuple.
type TupleResult struct {
	Prov  provgraph.NodeID `json:"prov"`
	Mult  int              `json:"mult"`
	Tuple string           `json:"tuple"`
}

// RelationResult is one recorded output relation.
type RelationResult struct {
	Execution int           `json:"execution"`
	Node      string        `json:"node"`
	Relation  string        `json:"relation"`
	Tuples    []TupleResult `json:"tuples"`
}

// OutputsResult lists every recorded output relation.
type OutputsResult struct {
	Relations []RelationResult `json:"relations"`
}

// Outputs returns the annotated output relations of the snapshot.
func (s *Service) Outputs(path string) (*OutputsResult, error) {
	qp, err := s.open(path)
	if err != nil {
		return nil, err
	}
	return outputsOf(qp)
}

func outputsOf(qp *core.QueryProcessor) (*OutputsResult, error) {
	res := &OutputsResult{Relations: []RelationResult{}}
	for _, d := range qp.Outputs() {
		rel := RelationResult{
			Execution: d.Execution, Node: d.Node, Relation: d.Relation,
			Tuples: make([]TupleResult, 0, len(d.Tuples)),
		}
		for _, t := range d.Tuples {
			rel.Tuples = append(rel.Tuples, TupleResult{
				Prov: t.Prov, Mult: t.Mult, Tuple: t.Tuple.String(),
			})
		}
		res.Relations = append(res.Relations, rel)
	}
	return res, nil
}

// ZoomResult reports the effect of zooming modules out.
type ZoomResult struct {
	Modules     []string `json:"modules"`
	NodesBefore int      `json:"nodesBefore"`
	NodesAfter  int      `json:"nodesAfter"`
	HiddenNodes int      `json:"hiddenNodes"`
	ZoomNodes   int      `json:"zoomNodes"`
}

// Zoom computes the coarse view with the given modules zoomed out
// (Section 4.1). The cached processor is shared between callers, so the
// transformation is applied to an ephemeral copy-on-write overlay — a
// per-request cost of O(zoom work) instead of the full Clone() the
// server used to pay — and reported, never persisted.
func (s *Service) Zoom(path string, modules ...string) (*ZoomResult, error) {
	qp, err := s.open(path)
	if err != nil {
		return nil, err
	}
	return zoomOf(qp, modules...)
}

// overlayPool recycles the ephemeral copy-on-write overlays zoom
// previews are computed on: each request Resets a pooled overlay over
// the shared graph instead of allocating delta containers from scratch.
var overlayPool = sync.Pool{New: func() any { return new(provgraph.Overlay) }}

func zoomOf(qp *core.QueryProcessor, modules ...string) (*ZoomResult, error) {
	if len(modules) == 0 {
		return nil, badRequestf("zoom: at least one module is required")
	}
	g := qp.Graph()
	seen := make(map[string]bool, len(modules))
	for _, m := range modules {
		if seen[m] {
			return nil, badRequestf("zoom: module %q given twice", m)
		}
		seen[m] = true
		if len(qp.Index().ModuleInvocations(m)) == 0 && len(g.InvocationsOf(m)) == 0 {
			return nil, badRequestf("zoom: no invocations of module %q in the graph", m)
		}
	}
	view := overlayPool.Get().(*provgraph.Overlay)
	view.Reset(g)
	rec := view.ZoomOut(modules...)
	res := &ZoomResult{
		Modules:     modules,
		NodesBefore: g.NumNodes(),
		NodesAfter:  view.NumNodes(),
		HiddenNodes: rec.HiddenCount(),
		ZoomNodes:   len(rec.ZoomNodes()),
	}
	overlayPool.Put(view)
	return res, nil
}

// RemovedNode describes one node a deletion would remove.
type RemovedNode struct {
	ID    provgraph.NodeID `json:"id"`
	Type  string           `json:"type"`
	Op    string           `json:"op"`
	Label string           `json:"label"`
}

// DeleteResult reports a what-if deletion propagation (Section 4.2).
type DeleteResult struct {
	Node         provgraph.NodeID `json:"node"`
	RemovedCount int              `json:"removedCount"`
	Removed      []RemovedNode    `json:"removed"`
}

// Delete runs deletion propagation from the given node without modifying
// the graph.
func (s *Service) Delete(path, node string) (*DeleteResult, error) {
	qp, err := s.open(path)
	if err != nil {
		return nil, err
	}
	return deleteOf(qp, node)
}

func deleteOf(qp *core.QueryProcessor, node string) (*DeleteResult, error) {
	g := qp.Graph()
	id, err := parseNode(g.TotalNodes(), node)
	if err != nil {
		return nil, err
	}
	res := qp.WhatIfDelete(id)
	out := &DeleteResult{Node: id, RemovedCount: res.Size(), Removed: make([]RemovedNode, 0, res.Size())}
	for _, r := range res.Removed {
		n := g.Node(r)
		out.Removed = append(out.Removed, RemovedNode{
			ID: r, Type: n.Type.String(), Op: n.Op.String(), Label: n.Label,
		})
	}
	return out, nil
}

// SubgraphResult reports a subgraph query (Section 5.1).
type SubgraphResult struct {
	Root  provgraph.NodeID   `json:"root"`
	Size  int                `json:"size"`
	Nodes []provgraph.NodeID `json:"nodes"`
}

// Subgraph answers the subgraph query rooted at the given node.
func (s *Service) Subgraph(path, node string) (*SubgraphResult, error) {
	qp, err := s.open(path)
	if err != nil {
		return nil, err
	}
	return subgraphOf(qp, node)
}

func subgraphOf(qp *core.QueryProcessor, node string) (*SubgraphResult, error) {
	id, err := parseNode(qp.Graph().TotalNodes(), node)
	if err != nil {
		return nil, err
	}
	sub := qp.Subgraph(id)
	return &SubgraphResult{Root: id, Size: sub.Size(), Nodes: sub.Nodes}, nil
}

// LineageResult classifies a node's ancestry.
type LineageResult struct {
	Node          provgraph.NodeID   `json:"node"`
	AncestorCount int                `json:"ancestorCount"`
	Inputs        []provgraph.NodeID `json:"inputs"`
	StateTuples   []provgraph.NodeID `json:"stateTuples"`
	Modules       []string           `json:"modules"`
	Provenance    string             `json:"provenance"`
}

// Lineage returns the classified ancestry and the semiring provenance
// expression of the given node.
func (s *Service) Lineage(path, node string) (*LineageResult, error) {
	qp, err := s.open(path)
	if err != nil {
		return nil, err
	}
	return lineageOf(qp, node)
}

func lineageOf(qp *core.QueryProcessor, node string) (*LineageResult, error) {
	id, err := parseNode(qp.Graph().TotalNodes(), node)
	if err != nil {
		return nil, err
	}
	l := qp.Lineage(id)
	return &LineageResult{
		Node: id, AncestorCount: l.AncestorCount,
		Inputs: l.Inputs, StateTuples: l.StateTuples, Modules: l.Modules,
		Provenance: qp.Expr(id).String(),
	}, nil
}

// FindRequest selects nodes by structural properties; all fields are
// optional, string-encoded for uniform CLI/HTTP parsing (class: "p"/"v";
// type: "I", "m", "i", "o", "s", "tuple", "op", "value", "zoom"; op: "+",
// "·", "δ", "⊗", "agg", "bb", "const").
type FindRequest struct {
	Classes []string
	Types   []string
	Ops     []string
	Label   string
	Module  string
}

// FindResult lists the matching live nodes.
type FindResult struct {
	Count int                `json:"count"`
	Nodes []provgraph.NodeID `json:"nodes"`
}

// filter parses the request's string-encoded dimensions into a
// core.NodeFilter.
func (req FindRequest) filter() (core.NodeFilter, error) {
	f := core.NodeFilter{Label: req.Label, Module: req.Module}
	for _, c := range req.Classes {
		cl, err := parseClass(c)
		if err != nil {
			return f, err
		}
		f.Classes = append(f.Classes, cl)
	}
	for _, t := range req.Types {
		ty, err := parseType(t)
		if err != nil {
			return f, err
		}
		f.Types = append(f.Types, ty)
	}
	for _, o := range req.Ops {
		op, err := parseOp(o)
		if err != nil {
			return f, err
		}
		f.Ops = append(f.Ops, op)
	}
	return f, nil
}

// Find answers an index-backed node selection query.
func (s *Service) Find(path string, req FindRequest) (*FindResult, error) {
	qp, err := s.open(path)
	if err != nil {
		return nil, err
	}
	return findOf(qp, req)
}

func findOf(qp *core.QueryProcessor, req FindRequest) (*FindResult, error) {
	f, err := req.filter()
	if err != nil {
		return nil, err
	}
	nodes := qp.FindNodes(f)
	if nodes == nil {
		nodes = []provgraph.NodeID{}
	}
	return &FindResult{Count: len(nodes), Nodes: nodes}, nil
}

func parseClass(s string) (provgraph.Class, error) {
	switch s {
	case "p":
		return provgraph.ClassP, nil
	case "v":
		return provgraph.ClassV, nil
	}
	return 0, badRequestf("unknown node class %q (want p or v)", s)
}

func parseType(s string) (provgraph.Type, error) {
	for t := provgraph.TypeWorkflowInput; t <= provgraph.TypeZoom; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, badRequestf("unknown node type %q", s)
}

func parseOp(s string) (provgraph.Op, error) {
	for o := provgraph.OpNone; o <= provgraph.OpConst; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, badRequestf("unknown operation %q", s)
}

// WriteDOT streams the graph as Graphviz DOT.
func (s *Service) WriteDOT(path string, w io.Writer) error {
	qp, err := s.open(path)
	if err != nil {
		return err
	}
	return writeDOTOf(qp, w)
}

func writeDOTOf(qp *core.QueryProcessor, w io.Writer) error {
	return qp.Graph().WriteDOT(w, "lipstick")
}

// WriteOPM streams the graph as Open Provenance Model JSON.
func (s *Service) WriteOPM(path string, w io.Writer) error {
	qp, err := s.open(path)
	if err != nil {
		return err
	}
	return writeOPMOf(qp, w)
}

func writeOPMOf(qp *core.QueryProcessor, w io.Writer) error {
	return opm.Export(qp.Graph()).WriteJSON(w)
}

// WriteJSON streams the full snapshot as JSON.
func (s *Service) WriteJSON(path string, w io.Writer) error {
	qp, err := s.open(path)
	if err != nil {
		return err
	}
	return writeJSONOf(qp, w)
}

func writeJSONOf(qp *core.QueryProcessor, w io.Writer) error {
	return store.ExportJSON(w, &store.Snapshot{Graph: qp.Graph(), Outputs: qp.Outputs()})
}
