package serve

import (
	"io"
	"time"

	"lipstick/internal/core"
	"lipstick/internal/provgraph"
)

// This file is the transport-agnostic session and registry surface: list
// named snapshots, open copy-on-write mutation sessions over them, apply
// zoom/delete transformations to a session's overlay, and answer
// session-scoped queries. The HTTP layer (http.go) and any future
// transport are thin callers.

// SnapshotsResult lists the registered snapshots.
type SnapshotsResult struct {
	Count     int                 `json:"count"`
	Snapshots []core.SnapshotInfo `json:"snapshots"`
}

// Snapshots lists the snapshot names the registry serves.
func (s *Service) Snapshots() *SnapshotsResult {
	snaps := s.reg.Snapshots()
	return &SnapshotsResult{Count: len(snaps), Snapshots: snaps}
}

// ResolveSnapshot maps a registered snapshot name to its path.
func (s *Service) ResolveSnapshot(name string) (string, error) {
	return s.reg.Lookup(name)
}

// SessionResult describes one mutation session.
type SessionResult struct {
	ID       string    `json:"id"`
	Snapshot string    `json:"snapshot"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"lastUsed"`
	// Nodes is the live node count of the session's view (changes as the
	// session zooms and deletes).
	Nodes int `json:"nodes"`
	// Changes is the session's recorded delta count — its memory cost.
	Changes int `json:"changes"`
	// ZoomedOut lists the currently zoomed-out modules.
	ZoomedOut []string `json:"zoomedOut"`
}

func sessionResult(sess *core.Session) *SessionResult {
	r := &SessionResult{
		ID:        sess.ID(),
		Snapshot:  sess.SnapshotName(),
		Created:   sess.Created(),
		LastUsed:  sess.LastUsed(),
		Nodes:     sess.NumNodes(),
		Changes:   sess.Changes(),
		ZoomedOut: sess.ZoomedOut(),
	}
	if r.ZoomedOut == nil {
		r.ZoomedOut = []string{}
	}
	return r
}

// CreateSession opens a mutation session over a registered snapshot.
func (s *Service) CreateSession(snapshot string) (*SessionResult, error) {
	if snapshot == "" {
		return nil, badRequestf("sessions: a snapshot name is required")
	}
	sess, err := s.reg.CreateSession(snapshot)
	if err != nil {
		return nil, err
	}
	return sessionResult(sess), nil
}

// SessionsResult lists the live sessions.
type SessionsResult struct {
	Count    int              `json:"count"`
	Sessions []*SessionResult `json:"sessions"`
}

// Sessions lists the live (unexpired) sessions, most recent first.
func (s *Service) Sessions() *SessionsResult {
	live := s.reg.Sessions()
	out := &SessionsResult{Count: len(live), Sessions: make([]*SessionResult, 0, len(live))}
	for _, sess := range live {
		out.Sessions = append(out.Sessions, sessionResult(sess))
	}
	return out
}

// SessionInfo describes one session by id.
func (s *Service) SessionInfo(id string) (*SessionResult, error) {
	sess, err := s.reg.Session(id)
	if err != nil {
		return nil, err
	}
	return sessionResult(sess), nil
}

// CloseSession discards a session.
func (s *Service) CloseSession(id string) error {
	return s.reg.CloseSession(id)
}

// SessionZoomRequest applies a zoom transformation to a session: zoom
// out the given modules, or (with In) undo the most recent zoom-out.
type SessionZoomRequest struct {
	Modules []string `json:"modules"`
	In      bool     `json:"in"`
}

// SessionZoomResult reports a session zoom transformation.
type SessionZoomResult struct {
	Session     string   `json:"session"`
	Action      string   `json:"action"` // "out" or "in"
	Modules     []string `json:"modules"`
	NodesAfter  int      `json:"nodesAfter"`
	HiddenNodes int      `json:"hiddenNodes"`
	ZoomNodes   int      `json:"zoomNodes"`
	ZoomedOut   []string `json:"zoomedOut"`
}

// SessionZoom applies zoom-out/zoom-in to the session's overlay.
func (s *Service) SessionZoom(id string, req SessionZoomRequest) (*SessionZoomResult, error) {
	sess, err := s.reg.Session(id)
	if err != nil {
		return nil, err
	}
	if req.In && len(req.Modules) > 0 {
		return nil, badRequestf("zoom: cannot combine \"in\" with modules")
	}
	var rec *provgraph.ZoomRecord
	action := "out"
	if req.In {
		action = "in"
		rec, err = sess.ZoomIn()
	} else {
		rec, err = sess.ZoomOut(req.Modules...)
	}
	if err != nil {
		return nil, badRequestf("zoom: %v", err)
	}
	res := &SessionZoomResult{
		Session:     sess.ID(),
		Action:      action,
		Modules:     rec.Modules,
		NodesAfter:  sess.NumNodes(),
		HiddenNodes: rec.HiddenCount(),
		ZoomNodes:   len(rec.ZoomNodes()),
		ZoomedOut:   sess.ZoomedOut(),
	}
	if res.ZoomedOut == nil {
		res.ZoomedOut = []string{}
	}
	return res, nil
}

// SessionDeleteRequest deletes nodes in a session's view, propagating
// per Definition 4.2. With WhatIf the effect is computed but not applied.
type SessionDeleteRequest struct {
	Nodes  []provgraph.NodeID `json:"nodes"`
	WhatIf bool               `json:"whatIf"`
}

// RecomputedAggregateResult is one aggregate whose value changed after
// an applied deletion (Example 4.3).
type RecomputedAggregateResult struct {
	Node      provgraph.NodeID `json:"node"`
	Op        string           `json:"op"`
	Before    string           `json:"before"`
	After     string           `json:"after"`
	Survivors int              `json:"survivors"`
}

// SessionDeleteResult reports a session deletion.
type SessionDeleteResult struct {
	Session      string                      `json:"session"`
	Nodes        []provgraph.NodeID          `json:"nodes"`
	Applied      bool                        `json:"applied"`
	RemovedCount int                         `json:"removedCount"`
	Removed      []RemovedNode               `json:"removed"`
	Recomputed   []RecomputedAggregateResult `json:"recomputedAggregates"`
	NodesAfter   int                         `json:"nodesAfter"`
}

// SessionDelete applies (or previews, with WhatIf) deletion propagation
// in the session's view. Applied deletions also recompute affected
// aggregates.
func (s *Service) SessionDelete(id string, req SessionDeleteRequest) (*SessionDeleteResult, error) {
	sess, err := s.reg.Session(id)
	if err != nil {
		return nil, err
	}
	if len(req.Nodes) == 0 {
		return nil, badRequestf("delete: at least one node is required")
	}
	total := sess.TotalNodes()
	for _, n := range req.Nodes {
		if n < 0 || int(n) >= total {
			return nil, badRequestf("invalid node id %d (session view has %d nodes)", n, total)
		}
	}
	var res *provgraph.DeletionResult
	var recs []provgraph.RecomputedAggregate
	if req.WhatIf {
		res = sess.WhatIfDelete(req.Nodes...)
	} else {
		res, recs = sess.ApplyDelete(req.Nodes...)
	}
	out := &SessionDeleteResult{
		Session:      sess.ID(),
		Nodes:        req.Nodes,
		Applied:      !req.WhatIf,
		RemovedCount: res.Size(),
		Removed:      make([]RemovedNode, 0, res.Size()),
		Recomputed:   make([]RecomputedAggregateResult, 0, len(recs)),
		NodesAfter:   sess.NumNodes(),
	}
	for _, r := range res.Removed {
		n := sess.Node(r)
		out.Removed = append(out.Removed, RemovedNode{
			ID: r, Type: n.Type.String(), Op: n.Op.String(), Label: n.Label,
		})
	}
	for _, rec := range recs {
		out.Recomputed = append(out.Recomputed, RecomputedAggregateResult{
			Node: rec.Node, Op: rec.Op,
			Before: rec.Before.String(), After: rec.After.String(),
			Survivors: rec.Survivors,
		})
	}
	return out, nil
}

// SessionFind answers a node selection query through the session view.
func (s *Service) SessionFind(id string, req FindRequest) (*FindResult, error) {
	sess, err := s.reg.Session(id)
	if err != nil {
		return nil, err
	}
	f, err := req.filter()
	if err != nil {
		return nil, err
	}
	nodes := sess.FindNodes(f)
	if nodes == nil {
		nodes = []provgraph.NodeID{}
	}
	return &FindResult{Count: len(nodes), Nodes: nodes}, nil
}

// SessionSubgraph answers the subgraph query in the session view.
func (s *Service) SessionSubgraph(id, node string) (*SubgraphResult, error) {
	sess, err := s.reg.Session(id)
	if err != nil {
		return nil, err
	}
	nid, err := parseNode(sess.TotalNodes(), node)
	if err != nil {
		return nil, err
	}
	sub := sess.Subgraph(nid)
	return &SubgraphResult{Root: nid, Size: sub.Size(), Nodes: sub.Nodes}, nil
}

// SessionLineage returns the classified ancestry and provenance
// expression of a node in the session view.
func (s *Service) SessionLineage(id, node string) (*LineageResult, error) {
	sess, err := s.reg.Session(id)
	if err != nil {
		return nil, err
	}
	nid, err := parseNode(sess.TotalNodes(), node)
	if err != nil {
		return nil, err
	}
	l := sess.Lineage(nid)
	return &LineageResult{
		Node: nid, AncestorCount: l.AncestorCount,
		Inputs: l.Inputs, StateTuples: l.StateTuples, Modules: l.Modules,
		Provenance: sess.Provenance(nid),
	}, nil
}

// SessionDOT streams the session's what-if view as Graphviz DOT.
func (s *Service) SessionDOT(id string, w io.Writer) error {
	sess, err := s.reg.Session(id)
	if err != nil {
		return err
	}
	return sess.WriteDOT(w, "lipstick-session")
}
