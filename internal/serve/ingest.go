package serve

import (
	"io"

	"lipstick/internal/core"
	"lipstick/internal/store"
)

// Streaming ingestion surface: event batches captured while a workflow
// runs (workflow.WithEventSink -> store.EncodeEventBatch) are POSTed to
// /v1/ingest/{name} and applied to a registry-named core.LiveGraph, whose
// read surface serves every query endpoint mid-ingest. The transport-
// agnostic handlers live here; http.go wires the routes.

// runFn executes a query callback against some target's processor.
type runFn func(func(*core.QueryProcessor) error) error

// pathRun answers queries from the cached processor of a static snapshot.
func (s *Service) pathRun(path string) runFn {
	return func(fn func(*core.QueryProcessor) error) error {
		qp, err := s.open(path)
		if err != nil {
			return err
		}
		return fn(qp)
	}
}

// liveRun answers queries from the graph's newest published view: a
// consistent, immutable event prefix reached by two atomic loads on the
// steady path — no lock is shared with the ingesting writer.
func liveRun(lg *core.LiveGraph) runFn {
	return func(fn func(*core.QueryProcessor) error) error {
		return fn(lg.ReadView().QP)
	}
}

// targetRun resolves a registered name — live graph or static snapshot —
// to a query runner. Live reads run against the newest published view,
// so they see a consistent event prefix without blocking ingestion.
func (s *Service) targetRun(name string) (runFn, error) {
	if lg, err := s.reg.LiveGraph(name); err == nil {
		return liveRun(lg), nil
	}
	path, err := s.reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return s.pathRun(path), nil
}

// ReadTarget runs fn against the named target: a live graph (its newest
// published view) or a static snapshot's shared cached processor. fn
// must treat the processor as read-only and must not retain results that
// alias graph internals past its return.
func (s *Service) ReadTarget(name string, fn func(*core.QueryProcessor) error) error {
	run, err := s.targetRun(name)
	if err != nil {
		return err
	}
	return run(fn)
}

// IngestResult reports one applied event batch (or the stream's current
// position, for GET).
type IngestResult struct {
	Name string `json:"name"`
	// Seq is the stream's last applied sequence number.
	Seq uint64 `json:"seq"`
	// Applied counts events this batch added; Duplicates counts re-sent
	// events skipped by sequence overlap.
	Applied    int `json:"applied"`
	Duplicates int `json:"duplicates"`
	// Nodes is the live graph's node count after the batch.
	Nodes int `json:"nodes"`
}

// Ingest decodes one binary event batch (store.EncodeEventBatch framing)
// and appends it to the named live graph, creating the graph on first
// use. Ingestion is idempotent by sequence number: retried batches are
// absorbed, gaps are rejected with *core.SeqGapError (HTTP 409), and a
// full admission queue with *core.OverloadedError (HTTP 429 + Retry-After
// — senders back off and retry; nothing is lost or duplicated).
func (s *Service) Ingest(name string, body io.Reader) (*IngestResult, error) {
	if err := s.rejectFollowerWrite(); err != nil {
		return nil, err
	}
	firstSeq, events, err := store.DecodeEventBatch(body)
	if err != nil {
		return nil, badRequestf("ingest: %v", err)
	}
	// A stream that does not exist yet must start at sequence 1; reject
	// a mid-stream batch BEFORE creating the graph, or a mis-addressed
	// resume would claim the name (and, on durable servers, leave an
	// empty WAL directory behind) just to be told 409.
	if _, lerr := s.reg.LiveGraph(name); lerr != nil && firstSeq != 1 {
		return nil, &core.SeqGapError{Name: name, Expected: 1, Got: firstSeq}
	}
	// OpenLive errors keep their own nature: bad names map to 400 via
	// core.NameError, WAL recovery/I-O failures surface as 500s.
	lg, err := s.reg.OpenLive(name)
	if err != nil {
		return nil, err
	}
	st, err := lg.Append(firstSeq, events)
	if err != nil {
		return nil, err
	}
	info := lg.Info()
	return &IngestResult{
		Name: name, Seq: st.Seq, Applied: st.Applied,
		Duplicates: st.Duplicates, Nodes: info.Nodes,
	}, nil
}

// IngestStatus reports a live stream's position (senders resync from it).
func (s *Service) IngestStatus(name string) (*IngestResult, error) {
	lg, err := s.reg.LiveGraph(name)
	if err != nil {
		return nil, err
	}
	info := lg.Info()
	return &IngestResult{Name: name, Seq: info.Events, Nodes: info.Nodes}, nil
}

// CheckpointResult reports a forced checkpoint.
type CheckpointResult struct {
	Name string `json:"name"`
	// Seq is the event sequence the checkpoint covers.
	Seq uint64 `json:"seq"`
	// Durable is false when the graph has no write-ahead log (the request
	// was a no-op).
	Durable bool `json:"durable"`
}

// CheckpointLive forces a WAL checkpoint of the named live graph,
// compacting its log prefix into an LPSK v2 snapshot.
func (s *Service) CheckpointLive(name string) (*CheckpointResult, error) {
	if err := s.rejectFollowerWrite(); err != nil {
		return nil, err
	}
	lg, err := s.reg.LiveGraph(name)
	if err != nil {
		return nil, err
	}
	if err := lg.Checkpoint(); err != nil {
		return nil, err
	}
	return &CheckpointResult{Name: name, Seq: lg.CheckpointSeq(), Durable: lg.Durable()}, nil
}

// ForkSession clones a session's copy-on-write state into a new session
// (O(changes), never the base graph).
func (s *Service) ForkSession(id string) (*SessionResult, error) {
	sess, err := s.reg.ForkSession(id)
	if err != nil {
		return nil, err
	}
	return sessionResult(sess), nil
}

// StatsResult is the /v1/stats payload: per-instance gauges plus the
// process-wide expvar counters.
type StatsResult struct {
	Snapshots struct {
		Static int `json:"static"`
		Live   int `json:"live"`
	} `json:"snapshots"`
	LiveGraphs []core.LiveInfo `json:"liveGraphs"`
	Sessions   struct {
		Live    int   `json:"live"`
		Created int64 `json:"created"`
		Forked  int64 `json:"forked"`
		Evicted int64 `json:"evicted"`
		Expired int64 `json:"expired"`
	} `json:"sessions"`
	SnapshotCache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"snapshotCache"`
	Ingest struct {
		Batches int64 `json:"batches"`
		Events  int64 `json:"events"`
		// Overloads counts batches shed by admission control (429s).
		Overloads int64 `json:"overloads"`
		// GroupCommits / GroupBatches: coalesced WAL flush cycles and the
		// batches they absorbed, summed over live graphs (their ratio is
		// the fsync amortization factor).
		GroupCommits int64 `json:"groupCommits"`
		GroupBatches int64 `json:"groupBatches"`
		// QueueHighWater is the deepest any live graph's admission queue
		// has been.
		QueueHighWater int64 `json:"queueHighWater"`
	} `json:"ingest"`
	// Replication is present on followers (and on any server with a lag
	// reporter installed): the worst lag across followed streams.
	Replication *ReplicationStats `json:"replication,omitempty"`
	Queries     struct {
		// Count / P50Micros / P99Micros summarize query endpoint service
		// time (log-bucketed histogram; quantiles are bucket upper bounds).
		Count     int64 `json:"count"`
		P50Micros int64 `json:"p50Micros"`
		P99Micros int64 `json:"p99Micros"`
		// Cache* describe the seq-stamped query-result cache.
		CacheEntries int   `json:"cacheEntries"`
		CacheBytes   int64 `json:"cacheBytes"`
		CacheHits    int64 `json:"cacheHits"`
		CacheMisses  int64 `json:"cacheMisses"`
	} `json:"queries"`
}

// Stats snapshots the service's operational metrics.
func (s *Service) Stats() *StatsResult {
	c := core.ReadCounters()
	res := &StatsResult{LiveGraphs: []core.LiveInfo{}}
	// One lock-consistent listing, partitioned by kind — two separate
	// registry reads could disagree under concurrent registration.
	for _, info := range s.reg.Snapshots() {
		if info.Kind == "live" {
			res.Snapshots.Live++
		} else {
			res.Snapshots.Static++
		}
	}
	for _, lg := range s.reg.LiveGraphs() {
		res.LiveGraphs = append(res.LiveGraphs, lg.Info())
	}
	res.Sessions.Live = s.reg.NumSessions()
	res.Sessions.Created = c.SessionsCreated
	res.Sessions.Forked = c.SessionsForked
	res.Sessions.Evicted = c.SessionsEvicted
	res.Sessions.Expired = c.SessionsExpired
	res.SnapshotCache.Entries = s.mgr.Len()
	res.SnapshotCache.Hits = c.SnapshotCacheHits
	res.SnapshotCache.Misses = c.SnapshotCacheMisses
	res.Ingest.Batches = c.IngestBatches
	res.Ingest.Events = c.IngestEvents
	res.Ingest.Overloads = c.IngestOverloads
	for _, lg := range s.reg.LiveGraphs() {
		ps := lg.PipelineStats()
		res.Ingest.GroupCommits += ps.GroupCommits
		res.Ingest.GroupBatches += ps.GroupBatches
		if ps.QueueHighWater > res.Ingest.QueueHighWater {
			res.Ingest.QueueHighWater = ps.QueueHighWater
		}
	}
	if repl := s.replicationStats(); repl != nil {
		res.Replication = repl
	}
	ql := core.ReadQueryLatency()
	res.Queries.Count = ql.Count
	res.Queries.P50Micros = ql.P50us
	res.Queries.P99Micros = ql.P99us
	res.Queries.CacheEntries = s.cache.Len()
	res.Queries.CacheBytes = s.cache.Bytes()
	res.Queries.CacheHits = c.QueryCacheHits
	res.Queries.CacheMisses = c.QueryCacheMisses
	return res
}
