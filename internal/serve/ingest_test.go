package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lipstick/internal/core"
	"lipstick/internal/provgraph"
	"lipstick/internal/store"
	"lipstick/internal/testutil"
	"lipstick/internal/workflow"
	"lipstick/internal/workflowgen"
)

// captureRun streams a dealership run into an event log and returns the
// batch-built graph plus the event stream.
func captureRun(t testing.TB) (*provgraph.Graph, []provgraph.Event) {
	t.Helper()
	log := provgraph.NewEventLog()
	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: 80, NumExec: 2, Seed: 7, Gran: workflow.Fine,
		EventSink: log.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Runner.Graph(), log.Drain()
}

func postBatch(t *testing.T, srv *httptest.Server, name string, firstSeq uint64, events []provgraph.Event) *IngestResult {
	t.Helper()
	var body bytes.Buffer
	if err := store.EncodeEventBatch(&body, firstSeq, events); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest/"+name, "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %s", resp.Status)
	}
	var res IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return &res
}

func fetchJSON(t *testing.T, srv *httptest.Server, path string, into any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPIngestLiveQueries(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	batch, events := captureRun(t)
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()

	mid := len(events) / 2
	res := postBatch(t, srv, "run1", 1, events[:mid])
	if res.Applied != mid || res.Seq != uint64(mid) {
		t.Fatalf("first batch: %+v", res)
	}

	// Mid-ingest, every read endpoint answers against the live prefix.
	var find FindResult
	if code := fetchJSON(t, srv, "/v1/snapshots/run1/find?type=m", &find); code != 200 {
		t.Fatalf("find returned %d", code)
	}
	if find.Count == 0 {
		t.Fatal("live find returned no invocations mid-ingest")
	}
	var lin LineageResult
	if code := fetchJSON(t, srv, "/v1/snapshots/run1/lineage?node=0", &lin); code != 200 {
		t.Fatalf("lineage returned %d", code)
	}
	var info InfoResult
	if code := fetchJSON(t, srv, "/v1/snapshots/run1/info", &info); code != 200 {
		t.Fatalf("info returned %d", code)
	}
	if info.Nodes == 0 {
		t.Fatal("live info reports an empty graph")
	}
	// The flat endpoints resolve the lone live graph as the default.
	if code := fetchJSON(t, srv, "/v1/info", &info); code != 200 {
		t.Fatalf("flat info against single live graph returned %d", code)
	}

	// Listing shows the live graph.
	var snaps SnapshotsResult
	if code := fetchJSON(t, srv, "/v1/snapshots", &snaps); code != 200 || snaps.Count != 1 {
		t.Fatalf("snapshots: code %d, %+v", code, snaps)
	}
	if snaps.Snapshots[0].Kind != "live" || snaps.Snapshots[0].Events != uint64(mid) {
		t.Fatalf("live listing: %+v", snaps.Snapshots[0])
	}

	// Finish the stream, retry the final batch (idempotent), and verify
	// the result matches the in-process batch build.
	res = postBatch(t, srv, "run1", uint64(mid)+1, events[mid:])
	if res.Seq != uint64(len(events)) {
		t.Fatalf("final seq %d, want %d", res.Seq, len(events))
	}
	res = postBatch(t, srv, "run1", uint64(mid)+1, events[mid:])
	if res.Applied != 0 || res.Duplicates != len(events)-mid {
		t.Fatalf("retry was not idempotent: %+v", res)
	}
	if err := svc.ReadTarget("run1", func(qp *core.QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("ingested graph differs from batch build")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// A gap is a structured 409.
	var gapBody bytes.Buffer
	if err := store.EncodeEventBatch(&gapBody, uint64(len(events))+10, events[:1]); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest/run1", "application/octet-stream", &gapBody)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gap returned %d, want 409", resp.StatusCode)
	}
	var gap struct {
		Kind     string `json:"kind"`
		Expected uint64 `json:"expected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gap); err != nil {
		t.Fatal(err)
	}
	if gap.Kind != "ingest-gap" || gap.Expected != uint64(len(events))+1 {
		t.Fatalf("gap body: %+v", gap)
	}

	// Garbage bodies are 400s.
	resp, err = http.Post(srv.URL+"/v1/ingest/run1", "application/octet-stream",
		bytes.NewReader([]byte("not an event batch")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body returned %d, want 400", resp.StatusCode)
	}
}

func TestHTTPIngestClientStreamsWhileServing(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// End-to-end: a workflow run streams through IngestClient into the
	// server while a reader polls live queries — the full capture ->
	// encode -> HTTP -> live-graph -> query pipeline, race-tested in CI.
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()

	client := NewIngestClient(srv.URL, "stream", 64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var find FindResult
			fetchJSON(t, srv, "/v1/snapshots/stream/find?type=m", &find)
		}
	}()

	run, err := workflowgen.RunDealership(workflowgen.DealershipParams{
		NumCars: 80, NumExec: 2, Seed: 7, Gran: workflow.Fine,
		EventSink: client.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	close(done)
	wg.Wait()

	var status IngestResult
	if code := fetchJSON(t, srv, "/v1/ingest/stream", &status); code != 200 {
		t.Fatalf("ingest status returned %d", code)
	}
	if status.Seq != client.Sent() {
		t.Fatalf("server seq %d != client sent %d", status.Seq, client.Sent())
	}
	if err := svc.ReadTarget("stream", func(qp *core.QueryProcessor) error {
		if !run.Runner.Graph().StructurallyEqual(qp.Graph()) {
			t.Fatal("streamed graph differs from the run's graph")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPStats(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	path := saveSnapshot(t)
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(path))
	defer srv.Close()

	// Generate some traffic: queries (cache hits), a session, an ingest.
	if code := fetchJSON(t, srv, "/v1/info", nil); code != 200 {
		t.Fatalf("info: %d", code)
	}
	if code := fetchJSON(t, srv, "/v1/info", nil); code != 200 {
		t.Fatalf("info: %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"snapshot":%q}`, core.SnapshotName(path)))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, events := captureRun(t)
	postBatch(t, srv, "live1", 1, events[:100])

	var stats StatsResult
	if code := fetchJSON(t, srv, "/v1/stats", &stats); code != 200 {
		t.Fatalf("stats returned %d", code)
	}
	if stats.Snapshots.Static != 1 || stats.Snapshots.Live != 1 {
		t.Fatalf("snapshot gauges: %+v", stats.Snapshots)
	}
	if len(stats.LiveGraphs) != 1 || stats.LiveGraphs[0].Events != 100 {
		t.Fatalf("live graphs: %+v", stats.LiveGraphs)
	}
	if stats.Sessions.Live != 1 {
		t.Fatalf("session gauge: %+v", stats.Sessions)
	}
	// Counters are process-wide (other tests contribute); just require
	// the traffic above to be visible.
	if stats.SnapshotCache.Hits < 1 || stats.SnapshotCache.Misses < 1 {
		t.Fatalf("cache counters: %+v", stats.SnapshotCache)
	}
	if stats.Sessions.Created < 1 || stats.Ingest.Batches < 1 || stats.Ingest.Events < 100 {
		t.Fatalf("counters: %+v", stats)
	}
	// The ingest above held one admission slot, so the queue high-water
	// gauge must register it even on this in-memory live graph.
	if stats.Ingest.QueueHighWater < 1 {
		t.Fatalf("queue high-water: %+v", stats.Ingest)
	}
}

func TestHTTPStatsIngestPipeline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// A durable, group-committed live graph surfaces its pipeline
	// counters — group commits, batches per commit, queue depth
	// high-water, and shed batches — through GET /v1/stats.
	reg := core.NewRegistry(nil,
		core.WithLiveDir(t.TempDir()),
		core.WithLiveOptions(
			core.WithLogOptions(store.WithGroupCommit(0, 0), store.WithFsync(false)),
			core.WithIngestQueueDepth(4),
		))
	defer reg.Close()
	svc := NewRegistryService(reg)
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()

	_, events := captureRun(t)
	for i := 0; i < 400; i += 100 {
		postBatch(t, srv, "pipe", uint64(i)+1, events[i:i+100])
	}
	// Force a shed batch: saturate the admission gate directly.
	lg, err := reg.LiveGraph("pipe")
	if err != nil {
		t.Fatal(err)
	}
	var held []*core.PendingAppend
	overloaded := false
	for i := 0; i < 5; i++ {
		p := lg.AppendAsync(401, events[400:420])
		held = append(held, p)
	}
	var body bytes.Buffer
	if err := store.EncodeEventBatch(&body, 401, events[400:420]); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest/pipe", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		overloaded = true
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Fatal("429 without Retry-After")
		}
		var shed struct {
			Kind  string `json:"kind"`
			Name  string `json:"name"`
			Depth int    `json:"depth"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
			t.Fatal(err)
		}
		if shed.Kind != "overloaded" || shed.Name != "pipe" || shed.Depth != 4 {
			t.Fatalf("429 body: %+v", shed)
		}
	}
	resp.Body.Close()
	for _, p := range held {
		p.Wait() // drain; duplicates resolve without error
	}
	if !overloaded {
		t.Fatal("saturated queue did not shed the HTTP batch")
	}

	var stats StatsResult
	if code := fetchJSON(t, srv, "/v1/stats", &stats); code != 200 {
		t.Fatalf("stats returned %d", code)
	}
	if stats.Ingest.GroupCommits < 1 || stats.Ingest.GroupBatches < stats.Ingest.GroupCommits {
		t.Fatalf("group counters: %+v", stats.Ingest)
	}
	if stats.Ingest.QueueHighWater < 4 || stats.Ingest.Overloads < 1 {
		t.Fatalf("admission counters: %+v", stats.Ingest)
	}
}

func TestHTTPIngestClientRetriesOverload(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Every batch's first attempt is shed with a synthetic 429; the
	// client's backoff retry must complete the stream with zero lost or
	// duplicated events (asserted by replay equality against the batch
	// build).
	batch, events := captureRun(t)
	svc := NewService(nil)
	inner := svc.Handler("")
	var mu sync.Mutex
	attempts := make(map[string]int)
	shed := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/ingest/") {
			mu.Lock()
			attempts[r.URL.Path]++
			first := attempts[r.URL.Path]%2 == 1
			if first {
				shed++
			}
			mu.Unlock()
			if first {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"synthetic overload","kind":"overloaded"}`)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client := NewIngestClient(srv.URL, "retry", 64)
	client.RetryBase = time.Millisecond
	for _, ev := range events {
		client.Record(ev)
	}
	if err := client.Flush(); err != nil {
		t.Fatalf("flush with retries: %v", err)
	}
	mu.Lock()
	if shed == 0 {
		t.Fatal("no batch was shed; the retry path was not exercised")
	}
	mu.Unlock()
	if client.Sent() != uint64(len(events)) {
		t.Fatalf("client acked %d of %d events", client.Sent(), len(events))
	}
	if err := svc.ReadTarget("retry", func(qp *core.QueryProcessor) error {
		if !batch.StructurallyEqual(qp.Graph()) {
			t.Fatal("retried stream differs from batch build (lost or duplicated events)")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Non-retryable statuses stay sticky immediately.
	deadSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer deadSrv.Close()
	c2 := NewIngestClient(deadSrv.URL, "dead", 4)
	c2.RetryBase = time.Millisecond
	for _, ev := range events[:8] {
		c2.Record(ev)
	}
	if err := c2.Flush(); err == nil {
		t.Fatal("400 did not turn the client sticky")
	}
}

func TestHTTPSessionFork(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	path := saveSnapshot(t)
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(path))
	defer srv.Close()
	name := core.SnapshotName(path)

	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"snapshot":%q}`, name))))
	if err != nil {
		t.Fatal(err)
	}
	var sess SessionResult
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Mutate the parent, fork, and verify the fork carries the deltas.
	resp, err = http.Post(srv.URL+"/v1/sessions/"+sess.ID+"/delete", "application/json",
		bytes.NewReader([]byte(`{"nodes":[0]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var parentInfo SessionResult
	if code := fetchJSON(t, srv, "/v1/sessions/"+sess.ID, &parentInfo); code != 200 {
		t.Fatalf("session info: %d", code)
	}

	resp, err = http.Post(srv.URL+"/v1/sessions/"+sess.ID+"/fork", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var fork SessionResult
	if err := json.NewDecoder(resp.Body).Decode(&fork); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fork.ID == sess.ID {
		t.Fatal("fork reused the parent id")
	}
	if fork.Nodes != parentInfo.Nodes || fork.Changes != parentInfo.Changes {
		t.Fatalf("fork state %+v differs from parent %+v", fork, parentInfo)
	}
	// Mutating the fork leaves the parent untouched.
	resp, err = http.Post(srv.URL+"/v1/sessions/"+fork.ID+"/delete", "application/json",
		bytes.NewReader([]byte(`{"nodes":[1]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var after SessionResult
	fetchJSON(t, srv, "/v1/sessions/"+sess.ID, &after)
	if after.Nodes != parentInfo.Nodes {
		t.Fatal("fork mutation leaked into the parent")
	}
	// Forking an unknown session is a structured 404.
	resp, err = http.Post(srv.URL+"/v1/sessions/sess-ghost/fork", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fork of unknown session returned %d", resp.StatusCode)
	}
}

func TestHTTPIngestGuards(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	svc := NewService(nil)
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()
	_, events := captureRun(t)

	// A mid-stream first batch must not claim the name: 409, and the
	// graph is not created.
	var body bytes.Buffer
	if err := store.EncodeEventBatch(&body, 50, events[:10]); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest/ghost", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mid-stream first batch returned %d, want 409", resp.StatusCode)
	}
	if code := fetchJSON(t, srv, "/v1/ingest/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("rejected first batch still created the graph (status %d)", code)
	}

	// A second sender reusing a stream name must get a sticky error, not
	// a silent duplicate-ack.
	postBatch(t, srv, "dup", 1, events[:40])
	reuse := NewIngestClient(srv.URL, "dup", 8)
	for _, ev := range events[:16] {
		reuse.Record(ev)
	}
	if err := reuse.Flush(); err == nil {
		t.Fatal("name reuse was silently acknowledged")
	} else if !strings.Contains(err.Error(), "already in use") {
		t.Fatalf("name reuse error = %v", err)
	}
}
