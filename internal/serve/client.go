package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"lipstick/internal/faultinject"
	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

// Ingest posts one event batch — sequences firstSeq..firstSeq+len-1 of a
// stream — to a lipstick server's POST /v1/ingest/{name} endpoint and
// returns the stream's resulting sequence. Most callers want the stateful
// IngestClient, which numbers and batches events automatically and
// retries overload rejections.
func Ingest(serverURL, name string, firstSeq uint64, events []provgraph.Event) (seq uint64, err error) {
	seq, _, _, err = ingest(http.DefaultClient, serverURL, name, firstSeq, events)
	return seq, err
}

// ingestGapError is the typed form of the server's 409 ingest-gap body:
// the stream's next expected sequence. A gap BELOW the client's acked
// position is the failover signature — a promoted follower that trails
// the dead primary — and the client rewinds from its retained window.
type ingestGapError struct {
	name     string
	expected uint64
	got      uint64
	msg      string
}

// Error implements error.
func (e *ingestGapError) Error() string { return e.msg }

// transportError marks failures where no HTTP response arrived (refused
// connection, reset mid-body). Batches carry their sequence numbers and
// the server dedupes, so retrying these is exactly-once safe.
type transportError struct{ err error }

// Error implements error.
func (e *transportError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying failure.
func (e *transportError) Unwrap() error { return e.err }

// ingest sends one batch and reports the HTTP status and any Retry-After
// hint alongside the error, so callers can tell retryable rejections
// (429/503, transport failures) from fatal ones and pace their backoff.
func ingest(c *http.Client, serverURL, name string, firstSeq uint64, events []provgraph.Event) (uint64, int, time.Duration, error) {
	var body bytes.Buffer
	if err := store.EncodeEventBatch(&body, firstSeq, events); err != nil {
		return 0, 0, 0, err
	}
	u := fmt.Sprintf("%s/v1/ingest/%s", serverURL, url.PathEscape(name))
	resp, err := c.Post(u, "application/octet-stream", &body)
	if err != nil {
		return 0, 0, 0, &transportError{err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, resp.StatusCode, 0, &transportError{err: err}
	}
	if resp.StatusCode != http.StatusOK {
		retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
		err := fmt.Errorf("lipstick: ingest %s: server returned %s: %s",
			name, resp.Status, bytes.TrimSpace(payload))
		if resp.StatusCode == http.StatusConflict {
			var gap struct {
				Kind     string `json:"kind"`
				Expected uint64 `json:"expected"`
				Got      uint64 `json:"got"`
			}
			if jerr := json.Unmarshal(payload, &gap); jerr == nil && gap.Kind == "ingest-gap" {
				return 0, resp.StatusCode, retryAfter,
					&ingestGapError{name: name, expected: gap.Expected, got: gap.Got, msg: err.Error()}
			}
		}
		return 0, resp.StatusCode, retryAfter, err
	}
	var res IngestResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return 0, resp.StatusCode, 0, fmt.Errorf("lipstick: ingest %s: decoding response: %w", name, err)
	}
	return res.Seq, resp.StatusCode, 0, nil
}

// parseRetryAfter decodes an integer-seconds Retry-After value; 0 means
// absent or unusable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// DefaultIngestBatch is the IngestClient's flush threshold in events.
const DefaultIngestBatch = 512

// IngestClient streams provenance events to a lipstick server as they
// are captured: attach Record as an event sink (workflow.WithEventSink,
// Graph.SetEventSink) and events are numbered, batched, and POSTed to
// /v1/ingest/{name}. Errors are sticky — capture continues buffering, and
// Flush (call it once the run finishes) reports the first failure.
//
// The client rides through a primary failover: retryable rejections
// (429 overload, 503 failover-in-progress, transport failures) back off
// and resend, honoring the server's Retry-After; and when a promoted
// follower answers with a sequence gap below the acked position — the
// new primary trails what the dead one acked — the client rewinds into
// its retained-event window and replays the suffix. Batches carry their
// sequence numbers and the server dedupes, so the replay applies
// exactly once.
//
// The client is safe for concurrent use, though capture itself is
// single-writer; the zero batch size selects DefaultIngestBatch.
type IngestClient struct {
	// HTTPClient overrides the default transport (30s timeout, an
	// "ingest.transport" failpoint for chaos tests).
	HTTPClient *http.Client
	// MaxRetries bounds how often one batch is retried after a retryable
	// rejection before the error turns sticky. 0 selects
	// DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// RetryBase is the initial backoff before the first retry; it doubles
	// per attempt (±50% jitter, capped at 2s), propagating the server's
	// backpressure to the capture source. A Retry-After hint overrides
	// the jittered delay (honored up to 5s). 0 selects DefaultRetryBase.
	RetryBase time.Duration
	// RetainEvents bounds the acked-event replay window kept for
	// failover rewind. 0 selects DefaultRetainEvents; negative disables
	// retention (a failover behind the acked position then turns sticky).
	RetainEvents int

	server string
	name   string
	batch  int
	// sleep is the backoff clock; tests inject a recorder. nil = time.Sleep.
	sleep func(time.Duration)

	mu   sync.Mutex
	buf  []provgraph.Event // guarded by mu
	sent uint64            // events acknowledged by the server; guarded by mu
	err  error             // guarded by mu
	// retained is the acked suffix kept for failover replay; its first
	// event has sequence retainedFirst and its last has sequence sent.
	retained      []provgraph.Event // guarded by mu
	retainedFirst uint64            // guarded by mu
}

// Retry defaults: eight attempts starting at 25ms cover ~6s of sustained
// overload before giving up. Retry-After hints are honored up to
// maxRetryAfterHonor. DefaultRetainEvents keeps 64k acked events
// (a few MB) replayable — enough to cover the replication lag of an
// async follower at typical ingest rates.
const (
	DefaultMaxRetries   = 8
	DefaultRetryBase    = 25 * time.Millisecond
	maxRetryBackoff     = 2 * time.Second
	maxRetryAfterHonor  = 5 * time.Second
	DefaultRetainEvents = 1 << 16
)

// NewIngestClient returns a streaming client for one named stream on one
// server (e.g. NewIngestClient("http://localhost:8080", "run1")).
// batchSize <= 0 selects DefaultIngestBatch.
func NewIngestClient(serverURL, name string, batchSize int) *IngestClient {
	if batchSize <= 0 {
		batchSize = DefaultIngestBatch
	}
	return &IngestClient{
		HTTPClient: &http.Client{
			Timeout:   30 * time.Second,
			Transport: faultinject.Transport("ingest.transport", nil),
		},
		server:        serverURL,
		name:          name,
		batch:         batchSize,
		retainedFirst: 1,
	}
}

// Record buffers one event, flushing a full batch synchronously. It
// matches the event-sink signature. Once the error state is sticky the
// stream can never resume (events in between would be lost), so further
// events are dropped instead of accumulating a dead buffer.
func (c *IngestClient) Record(ev provgraph.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.buf = append(c.buf, ev)
	if len(c.buf) >= c.batch {
		c.flushLocked()
	}
}

// Flush sends any buffered events and returns the sticky error state.
func (c *IngestClient) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil && len(c.buf) > 0 {
		c.flushLocked()
	}
	return c.err
}

// Err returns the sticky error without flushing.
func (c *IngestClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Sent returns the number of events the server has acknowledged.
func (c *IngestClient) Sent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// flushLocked sends the buffered batch, retrying overload rejections
// (429/503) and transport failures with jittered exponential backoff
// (Retry-After hints override the jitter), and rewinding into the
// retained window when a failover left the new primary behind the acked
// position. Retries and replays are safe: batches carry their sequence
// numbers and the server dedupes, so a resent batch is applied exactly
// once even if an earlier attempt landed.
func (c *IngestClient) flushLocked() {
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = DefaultRetryBase
	}
	var seq uint64
	var err error
	for attempt := 0; ; attempt++ {
		var status int
		var retryAfter time.Duration
		seq, status, retryAfter, err = ingest(c.HTTPClient, c.server, c.name, c.sent+1, c.buf)
		if err == nil {
			break
		}
		var gap *ingestGapError
		if errors.As(err, &gap) && c.rewindLocked(gap) {
			// Rewound into the retained window: resend immediately (the
			// new primary is writable, just behind), but still bounded by
			// the retry budget so a pathological server cannot loop us.
			if attempt >= maxRetries {
				c.err = fmt.Errorf("lipstick: ingest %s: retries exhausted during failover rewind: %w", c.name, err)
				return
			}
			continue
		}
		var transport *transportError
		retryable := status == http.StatusTooManyRequests ||
			status == http.StatusServiceUnavailable || errors.As(err, &transport)
		if !retryable || attempt >= maxRetries {
			c.err = err
			return
		}
		// Full jitter in [backoff/2, backoff): desynchronizes a fleet of
		// shed senders so they do not stampede back in lockstep. The half
		// is clamped to a positive value so a sub-2ns RetryBase cannot
		// feed rand.Int63n a zero. A server-provided Retry-After wins
		// over the jitter — the server knows when it will be writable.
		half := backoff / 2
		if half <= 0 {
			half = 1
		}
		delay := half + time.Duration(rand.Int63n(int64(half)))
		if retryAfter > 0 {
			if retryAfter > maxRetryAfterHonor {
				retryAfter = maxRetryAfterHonor
			}
			delay = retryAfter
		}
		if c.sleep != nil {
			c.sleep(delay)
		} else {
			time.Sleep(delay)
		}
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
	want := c.sent + uint64(len(c.buf))
	if seq != want {
		// The server is past this client's position: the stream name is
		// already in use (a previous run, another sender). Flag it now —
		// silently "acknowledged" duplicates would discard this run.
		c.err = fmt.Errorf("lipstick: ingest %s: server is at sequence %d, this sender at %d — stream name already in use; pick a fresh name", c.name, seq, want)
		return
	}
	c.sent = want
	c.retainLocked(c.buf)
	c.buf = c.buf[:0]
}

// rewindLocked moves the send position back to the server's expected
// sequence when the retained window still covers it: the to-replay
// suffix is prepended to the buffer and the acked position rolls back.
// It reports false when the gap is not a rewind case (the server is
// ahead, or the window no longer covers the expected sequence — acked
// events would be lost, which must surface as a sticky error instead).
func (c *IngestClient) rewindLocked(gap *ingestGapError) bool {
	expected := gap.expected
	if expected == 0 || expected > c.sent || expected < c.retainedFirst {
		return false
	}
	replay := c.retained[expected-c.retainedFirst:]
	merged := make([]provgraph.Event, 0, len(replay)+len(c.buf))
	merged = append(append(merged, replay...), c.buf...)
	c.buf = merged
	c.retained = c.retained[:expected-c.retainedFirst]
	c.sent = expected - 1
	return true
}

// retainLocked appends the just-acked batch to the replay window and
// trims it to the configured bound. Callers update c.sent first, so the
// invariant retainedFirst+len(retained)-1 == sent holds afterward.
func (c *IngestClient) retainLocked(batch []provgraph.Event) {
	limit := c.RetainEvents
	if limit == 0 {
		limit = DefaultRetainEvents
	}
	if limit < 0 {
		c.retained = nil
		c.retainedFirst = c.sent + 1
		return
	}
	c.retained = append(c.retained, batch...)
	if over := len(c.retained) - limit; over > 0 {
		c.retained = append([]provgraph.Event(nil), c.retained[over:]...)
		c.retainedFirst += uint64(over)
	}
}
