package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

// Ingest posts one event batch — sequences firstSeq..firstSeq+len-1 of a
// stream — to a lipstick server's POST /v1/ingest/{name} endpoint and
// returns the stream's resulting sequence. Most callers want the stateful
// IngestClient, which numbers and batches events automatically.
func Ingest(serverURL, name string, firstSeq uint64, events []provgraph.Event) (seq uint64, err error) {
	return ingest(http.DefaultClient, serverURL, name, firstSeq, events)
}

func ingest(c *http.Client, serverURL, name string, firstSeq uint64, events []provgraph.Event) (uint64, error) {
	var body bytes.Buffer
	if err := store.EncodeEventBatch(&body, firstSeq, events); err != nil {
		return 0, err
	}
	u := fmt.Sprintf("%s/v1/ingest/%s", serverURL, url.PathEscape(name))
	resp, err := c.Post(u, "application/octet-stream", &body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("lipstick: ingest %s: server returned %s: %s",
			name, resp.Status, bytes.TrimSpace(payload))
	}
	var res IngestResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return 0, fmt.Errorf("lipstick: ingest %s: decoding response: %w", name, err)
	}
	return res.Seq, nil
}

// DefaultIngestBatch is the IngestClient's flush threshold in events.
const DefaultIngestBatch = 512

// IngestClient streams provenance events to a lipstick server as they
// are captured: attach Record as an event sink (workflow.WithEventSink,
// Graph.SetEventSink) and events are numbered, batched, and POSTed to
// /v1/ingest/{name}. Errors are sticky — capture continues buffering, and
// Flush (call it once the run finishes) reports the first failure.
//
// The client is safe for concurrent use, though capture itself is
// single-writer; the zero batch size selects DefaultIngestBatch.
type IngestClient struct {
	// HTTPClient overrides http.DefaultClient (with its zero timeout) for
	// transport control.
	HTTPClient *http.Client

	server string
	name   string
	batch  int

	mu   sync.Mutex
	buf  []provgraph.Event
	sent uint64 // events acknowledged by the server
	err  error
}

// NewIngestClient returns a streaming client for one named stream on one
// server (e.g. NewIngestClient("http://localhost:8080", "run1")).
// batchSize <= 0 selects DefaultIngestBatch.
func NewIngestClient(serverURL, name string, batchSize int) *IngestClient {
	if batchSize <= 0 {
		batchSize = DefaultIngestBatch
	}
	return &IngestClient{
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		server:     serverURL,
		name:       name,
		batch:      batchSize,
	}
}

// Record buffers one event, flushing a full batch synchronously. It
// matches the event-sink signature. Once the error state is sticky the
// stream can never resume (events in between would be lost), so further
// events are dropped instead of accumulating a dead buffer.
func (c *IngestClient) Record(ev provgraph.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.buf = append(c.buf, ev)
	if len(c.buf) >= c.batch {
		c.flushLocked()
	}
}

// Flush sends any buffered events and returns the sticky error state.
func (c *IngestClient) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil && len(c.buf) > 0 {
		c.flushLocked()
	}
	return c.err
}

// Err returns the sticky error without flushing.
func (c *IngestClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Sent returns the number of events the server has acknowledged.
func (c *IngestClient) Sent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

func (c *IngestClient) flushLocked() {
	seq, err := ingest(c.HTTPClient, c.server, c.name, c.sent+1, c.buf)
	if err != nil {
		c.err = err
		return
	}
	want := c.sent + uint64(len(c.buf))
	if seq != want {
		// The server is past this client's position: the stream name is
		// already in use (a previous run, another sender). Flag it now —
		// silently "acknowledged" duplicates would discard this run.
		c.err = fmt.Errorf("lipstick: ingest %s: server is at sequence %d, this sender at %d — stream name already in use; pick a fresh name", c.name, seq, want)
		return
	}
	c.sent = want
	c.buf = c.buf[:0]
}
