package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"lipstick/internal/provgraph"
	"lipstick/internal/store"
)

// Ingest posts one event batch — sequences firstSeq..firstSeq+len-1 of a
// stream — to a lipstick server's POST /v1/ingest/{name} endpoint and
// returns the stream's resulting sequence. Most callers want the stateful
// IngestClient, which numbers and batches events automatically and
// retries overload rejections.
func Ingest(serverURL, name string, firstSeq uint64, events []provgraph.Event) (seq uint64, err error) {
	seq, _, err = ingest(http.DefaultClient, serverURL, name, firstSeq, events)
	return seq, err
}

// ingest sends one batch and reports the HTTP status alongside the error,
// so callers can tell retryable rejections (429/503) from fatal ones.
func ingest(c *http.Client, serverURL, name string, firstSeq uint64, events []provgraph.Event) (uint64, int, error) {
	var body bytes.Buffer
	if err := store.EncodeEventBatch(&body, firstSeq, events); err != nil {
		return 0, 0, err
	}
	u := fmt.Sprintf("%s/v1/ingest/%s", serverURL, url.PathEscape(name))
	resp, err := c.Post(u, "application/octet-stream", &body)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, resp.StatusCode, fmt.Errorf("lipstick: ingest %s: server returned %s: %s",
			name, resp.Status, bytes.TrimSpace(payload))
	}
	var res IngestResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return 0, resp.StatusCode, fmt.Errorf("lipstick: ingest %s: decoding response: %w", name, err)
	}
	return res.Seq, resp.StatusCode, nil
}

// DefaultIngestBatch is the IngestClient's flush threshold in events.
const DefaultIngestBatch = 512

// IngestClient streams provenance events to a lipstick server as they
// are captured: attach Record as an event sink (workflow.WithEventSink,
// Graph.SetEventSink) and events are numbered, batched, and POSTed to
// /v1/ingest/{name}. Errors are sticky — capture continues buffering, and
// Flush (call it once the run finishes) reports the first failure.
//
// The client is safe for concurrent use, though capture itself is
// single-writer; the zero batch size selects DefaultIngestBatch.
type IngestClient struct {
	// HTTPClient overrides http.DefaultClient (with its zero timeout) for
	// transport control.
	HTTPClient *http.Client
	// MaxRetries bounds how often one batch is retried after a retryable
	// rejection (HTTP 429 overload, 503) before the error turns sticky.
	// 0 selects DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// RetryBase is the initial backoff before the first retry; it doubles
	// per attempt (±50% jitter, capped at 2s), propagating the server's
	// backpressure to the capture source. 0 selects DefaultRetryBase.
	RetryBase time.Duration

	server string
	name   string
	batch  int
	// sleep is the backoff clock; tests inject a recorder. nil = time.Sleep.
	sleep func(time.Duration)

	mu   sync.Mutex
	buf  []provgraph.Event // guarded by mu
	sent uint64            // events acknowledged by the server; guarded by mu
	err  error             // guarded by mu
}

// Retry defaults: eight attempts starting at 25ms cover ~6s of sustained
// overload before giving up.
const (
	DefaultMaxRetries = 8
	DefaultRetryBase  = 25 * time.Millisecond
	maxRetryBackoff   = 2 * time.Second
)

// NewIngestClient returns a streaming client for one named stream on one
// server (e.g. NewIngestClient("http://localhost:8080", "run1")).
// batchSize <= 0 selects DefaultIngestBatch.
func NewIngestClient(serverURL, name string, batchSize int) *IngestClient {
	if batchSize <= 0 {
		batchSize = DefaultIngestBatch
	}
	return &IngestClient{
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		server:     serverURL,
		name:       name,
		batch:      batchSize,
	}
}

// Record buffers one event, flushing a full batch synchronously. It
// matches the event-sink signature. Once the error state is sticky the
// stream can never resume (events in between would be lost), so further
// events are dropped instead of accumulating a dead buffer.
func (c *IngestClient) Record(ev provgraph.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.buf = append(c.buf, ev)
	if len(c.buf) >= c.batch {
		c.flushLocked()
	}
}

// Flush sends any buffered events and returns the sticky error state.
func (c *IngestClient) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil && len(c.buf) > 0 {
		c.flushLocked()
	}
	return c.err
}

// Err returns the sticky error without flushing.
func (c *IngestClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Sent returns the number of events the server has acknowledged.
func (c *IngestClient) Sent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// flushLocked sends the buffered batch, retrying overload rejections
// (429/503) with jittered exponential backoff. Retries are safe: batches
// carry their sequence numbers and the server dedupes, so a retried
// batch is applied exactly once even if an earlier attempt landed.
func (c *IngestClient) flushLocked() {
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = DefaultRetryBase
	}
	var seq uint64
	var err error
	for attempt := 0; ; attempt++ {
		var status int
		seq, status, err = ingest(c.HTTPClient, c.server, c.name, c.sent+1, c.buf)
		if err == nil {
			break
		}
		retryable := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if !retryable || attempt >= maxRetries {
			c.err = err
			return
		}
		// Full jitter in [backoff/2, backoff): desynchronizes a fleet of
		// shed senders so they do not stampede back in lockstep. The half
		// is clamped to a positive value so a sub-2ns RetryBase cannot
		// feed rand.Int63n a zero.
		half := backoff / 2
		if half <= 0 {
			half = 1
		}
		delay := half + time.Duration(rand.Int63n(int64(half)))
		if c.sleep != nil {
			c.sleep(delay)
		} else {
			time.Sleep(delay)
		}
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
	want := c.sent + uint64(len(c.buf))
	if seq != want {
		// The server is past this client's position: the stream name is
		// already in use (a previous run, another sender). Flag it now —
		// silently "acknowledged" duplicates would discard this run.
		c.err = fmt.Errorf("lipstick: ingest %s: server is at sequence %d, this sender at %d — stream name already in use; pick a fresh name", c.name, seq, want)
		return
	}
	c.sent = want
	c.buf = c.buf[:0]
}
