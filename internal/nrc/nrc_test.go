package nrc

import (
	"math/rand"
	"testing"

	"lipstick/internal/eval"
	"lipstick/internal/nested"
	"lipstick/internal/pig"
)

func bagOfInts(vals ...int64) nested.Value {
	b := nested.NewBag()
	for _, v := range vals {
		b.Add(nested.NewTuple(nested.Int(v)))
	}
	return nested.BagVal(b)
}

func TestBasicConstructs(t *testing.T) {
	env := NewEnv()
	env.Bind("R", bagOfInts(1, 2, 2))

	// ⋃{ {⟨x.0, x.0⟩} | x ∈ R } duplicates fields, preserves multiplicity.
	e := For{Var: "x", In: Var{"R"}, Body: Singleton{Elem: MkTuple{Fields: []Expr{
		Proj{Tuple: Var{"x"}, Index: 0}, Proj{Tuple: Var{"x"}, Index: 0},
	}}}}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	want := nested.NewBag(
		nested.NewTuple(nested.Int(1), nested.Int(1)),
		nested.NewTuple(nested.Int(2), nested.Int(2)),
		nested.NewTuple(nested.Int(2), nested.Int(2)),
	)
	if !v.AsBag().Equal(want) {
		t.Errorf("got %v, want %v", v, nested.BagVal(want))
	}

	// δ collapses duplicates.
	d, err := Dedup{Arg: Var{"R"}}.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if d.AsBag().Len() != 2 {
		t.Errorf("δ(R) = %v", d)
	}

	// Union is additive.
	u, err := Union{L: Var{"R"}, R: Var{"R"}}.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if u.AsBag().Len() != 6 {
		t.Errorf("R ⊎ R has %d tuples", u.AsBag().Len())
	}
}

func TestEvalErrors(t *testing.T) {
	env := NewEnv()
	env.Bind("R", bagOfInts(1))
	cases := []Expr{
		Var{"missing"},
		Proj{Tuple: Const{nested.Int(1)}, Index: 0},
		Proj{Tuple: MkTuple{Fields: []Expr{Const{nested.Int(1)}}}, Index: 5},
		Singleton{Elem: Const{nested.Int(1)}},
		Union{L: Var{"R"}, R: Const{nested.Int(1)}},
		For{Var: "x", In: Const{nested.Int(1)}, Body: EmptyBag{}},
		For{Var: "x", In: Var{"R"}, Body: Const{nested.Int(1)}},
		Dedup{Arg: Const{nested.Int(1)}},
	}
	for i, e := range cases {
		if _, err := e.Eval(env); err == nil {
			t.Errorf("case %d (%s): expected error", i, e.String())
		}
	}
}

func TestForScopeRestored(t *testing.T) {
	env := NewEnv()
	env.Bind("R", bagOfInts(1))
	env.Bind("x", nested.Str("outer"))
	e := For{Var: "x", In: Var{"R"}, Body: Singleton{Elem: Var{"x"}}}
	if _, err := e.Eval(env); err != nil {
		t.Fatal(err)
	}
	v, ok := env.Lookup("x")
	if !ok || !v.Equal(nested.Str("outer")) {
		t.Error("comprehension binder leaked into the environment")
	}
}

func TestStrings(t *testing.T) {
	e := For{Var: "x", In: Var{"R"}, Body: Cond{
		Pred: Pred{Name: "p"},
		Then: Singleton{Elem: MkTuple{Fields: []Expr{Proj{Tuple: Var{"x"}, Index: 0}}}},
	}}
	want := "⋃{if p then {⟨x.0⟩} else {} | x ∈ R}"
	if e.String() != want {
		t.Errorf("String = %q, want %q", e.String(), want)
	}
	if (Dedup{Arg: EmptyBag{}}).String() != "δ({})" {
		t.Error("dedup string")
	}
}

// runBoth compiles a program, evaluates it with the direct engine and via
// the NRC translation, and compares every relation.
func runBoth(t *testing.T, src string, schemas nested.RelationSchemas, reg *pig.Registry, rels map[string]*nested.Bag) {
	t.Helper()
	plan, err := pig.CompileSource(src, schemas, reg)
	if err != nil {
		t.Fatal(err)
	}

	engineEnv := eval.NewEnv()
	nrcEnv := NewEnv()
	for name, bag := range rels {
		engineEnv.Set(name, eval.FromBag(schemas[name], bag))
		nrcEnv.Bind(name, nested.BagVal(bag))
	}
	if err := eval.New(nil).Run(plan, engineEnv); err != nil {
		t.Fatal(err)
	}
	if err := RunPlan(plan, nrcEnv); err != nil {
		t.Fatal(err)
	}
	for _, step := range plan.Steps {
		engineRel, err := engineEnv.Rel(step.Target)
		if err != nil {
			t.Fatal(err)
		}
		nrcVal, ok := nrcEnv.Lookup(step.Target)
		if !ok {
			t.Fatalf("%s: not bound by NRC evaluation", step.Target)
		}
		if _, isOrder := step.Op.(*pig.OrderOp); isOrder {
			continue // ORDER is post-processing; bags are order-insensitive anyway
		}
		if !engineRel.ToBag().Equal(nrcVal.AsBag()) {
			t.Errorf("%s differs:\n  engine: %s\n  nrc:    %s",
				step.Target, engineRel.ToBag(), nrcVal.AsBag())
		}
	}
}

func intSchema(names ...string) *nested.Schema {
	s := &nested.Schema{}
	for _, n := range names {
		s.Fields = append(s.Fields, nested.Field{Name: n, Type: nested.ScalarType(nested.KindInt)})
	}
	return s
}

func TestTranslationMatchesEngineCoreOps(t *testing.T) {
	schemas := nested.RelationSchemas{
		"A": intSchema("k", "v"),
		"B": intSchema("k", "w"),
	}
	a := nested.NewBag(
		nested.NewTuple(nested.Int(1), nested.Int(10)),
		nested.NewTuple(nested.Int(1), nested.Int(20)),
		nested.NewTuple(nested.Int(2), nested.Int(30)),
		nested.NewTuple(nested.Int(2), nested.Int(30)), // duplicate
	)
	b := nested.NewBag(
		nested.NewTuple(nested.Int(1), nested.Int(7)),
		nested.NewTuple(nested.Int(3), nested.Int(8)),
	)
	src := `
F = FILTER A BY v > 15;
P = FOREACH A GENERATE k, v * 2 AS dbl;
J = JOIN A BY k, B BY k;
G = GROUP A BY k;
S = FOREACH G GENERATE group AS k, COUNT(A) AS n, SUM(A.v) AS total, MIN(A.v) AS lo, MAX(A.v) AS hi, AVG(A.v) AS mean;
CG = COGROUP A BY k, B BY k;
U = UNION A, A;
D = DISTINCT U;
FL = FOREACH G GENERATE group, FLATTEN(A);
O = ORDER A BY v DESC;
L = LIMIT D 2;
AL = A;
ST = FOREACH A GENERATE *;
`
	runBoth(t, src, schemas, nil, map[string]*nested.Bag{"A": a, "B": b})
}

func TestTranslationWithUDF(t *testing.T) {
	reg := pig.NewRegistry()
	reg.MustRegister(&pig.UDF{
		Name:      "Pair",
		OutSchema: intSchema("a", "b"),
		Fn: func(args []nested.Value) (*nested.Bag, error) {
			v := args[0].AsInt()
			return nested.NewBag(
				nested.NewTuple(nested.Int(v), nested.Int(v+1)),
				nested.NewTuple(nested.Int(v), nested.Int(v+2)),
			), nil
		},
	})
	schemas := nested.RelationSchemas{"A": intSchema("k")}
	a := nested.NewBag(nested.NewTuple(nested.Int(5)), nested.NewTuple(nested.Int(9)))
	runBoth(t, "X = FOREACH A GENERATE FLATTEN(Pair(k)); Y = FOREACH A GENERATE Pair(k) AS bags;", schemas, reg, map[string]*nested.Bag{"A": a})
}

// TestTranslationRandomized compares the two evaluators on random inputs
// for a fixed operator mix.
func TestTranslationRandomized(t *testing.T) {
	schemas := nested.RelationSchemas{
		"A": intSchema("k", "v"),
		"B": intSchema("k", "w"),
	}
	src := `
J = JOIN A BY k, B BY k;
G = GROUP J BY A::k;
S = FOREACH G GENERATE group AS k, COUNT(J) AS n, SUM(J.v) AS sv;
D = DISTINCT S;
`
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		mk := func(n int) *nested.Bag {
			bag := nested.NewBag()
			for i := 0; i < n; i++ {
				bag.Add(nested.NewTuple(nested.Int(int64(r.Intn(4))), nested.Int(int64(r.Intn(10)))))
			}
			return bag
		}
		runBoth(t, src, schemas, nil, map[string]*nested.Bag{"A": mk(r.Intn(8)), "B": mk(r.Intn(8))})
	}
}

func TestTranslateMultipleFlattensUnsupported(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema("k", "v")}
	plan, err := pig.CompileSource("G = GROUP A BY k; X = FOREACH G GENERATE FLATTEN(A), FLATTEN(A);", schemas, nil)
	// The pig compiler may reject duplicate output fields first; when it
	// compiles, the NRC translation must refuse.
	if err != nil {
		t.Skip("pig compiler rejected the double flatten")
	}
	for _, step := range plan.Steps {
		if step.Target == "X" {
			if _, err := Translate(step.Op); err == nil {
				t.Error("double FLATTEN should be untranslatable")
			}
		}
	}
}

func TestAggregateBagHelper(t *testing.T) {
	// Exercised through the engine elsewhere; check the exported helper
	// directly for empty bags.
	b := nested.NewBag()
	v, err := eval.AggregateBag(0 /* AggSum */, b, 0, nested.KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("SUM over empty = %v, %v (want null)", v, err)
	}
}
