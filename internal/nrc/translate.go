package nrc

import (
	"fmt"

	"lipstick/internal/eval"
	"lipstick/internal/nested"
	"lipstick/internal/pig"
)

// Translate maps a compiled Pig Latin operator to an NRC expression over
// relation variables (the paper's Section 2.1 translation, which founds
// the provenance semantics). ORDER translates to the identity — relations
// are unordered in the calculus, and the paper treats ORDER as a
// provenance-free post-processing step. LIMIT and UDF application become
// base operations (NRC is parameterized by base functions, and UDFs are
// exactly the opaque functions the paper handles as black boxes).
func Translate(op pig.Operator) (Expr, error) {
	switch o := op.(type) {
	case *pig.ForeachOp:
		return translateForeach(o)
	case *pig.FilterOp:
		return For{Var: "x", In: Var{o.Input}, Body: Cond{
			Pred: exprPred(o.Cond, "x"),
			Then: Singleton{Elem: Var{"x"}},
		}}, nil
	case *pig.GroupOp:
		return translateGroup(o.Input, o.Keys, []string{o.Input}, [][]pig.Expr{o.Keys}), nil
	case *pig.CogroupOp:
		return translateCogroup(o.InputNames, o.Keys), nil
	case *pig.JoinOp:
		return translateJoin(o), nil
	case *pig.UnionOp:
		expr := Expr(Var{o.InputNames[0]})
		for _, in := range o.InputNames[1:] {
			expr = Union{L: expr, R: Var{in}}
		}
		return expr, nil
	case *pig.DistinctOp:
		return Dedup{Arg: Var{o.Input}}, nil
	case *pig.OrderOp:
		return Var{o.Input}, nil // unordered calculus; ORDER is post-processing
	case *pig.LimitOp:
		n := o.N
		return Prim{Name: fmt.Sprintf("limit%d", n), Args: []Expr{Var{o.Input}}, Fn: func(args []nested.Value) (nested.Value, error) {
			in := args[0].AsBag()
			out := nested.NewBag()
			for _, t := range in.Tuples {
				if int64(out.Len()) >= n {
					break
				}
				out.Add(t)
			}
			return nested.BagVal(out), nil
		}}, nil
	case *pig.AliasOp:
		return Var{o.Input}, nil
	default:
		return nil, fmt.Errorf("nrc: no translation for %T", op)
	}
}

// exprPred wraps a compiled scalar condition as an NRC predicate over the
// comprehension variable.
func exprPred(cond pig.Expr, varName string) Pred {
	return Pred{Name: cond.String(), Args: []Expr{Var{varName}}, Fn: func(args []nested.Value) (bool, error) {
		v, err := cond.Eval(args[0].AsTuple())
		if err != nil {
			return false, err
		}
		return v.Truthy(), nil
	}}
}

// exprPrim wraps a compiled scalar expression as an NRC base operation.
func exprPrim(e pig.Expr, varName string) Prim {
	return Prim{Name: e.String(), Args: []Expr{Var{varName}}, Fn: func(args []nested.Value) (nested.Value, error) {
		return e.Eval(args[0].AsTuple())
	}}
}

// keyPrim computes a (possibly composite) grouping key of a tuple.
func keyPrim(keys []pig.Expr, varName string) Prim {
	return Prim{Name: "key", Args: []Expr{Var{varName}}, Fn: func(args []nested.Value) (nested.Value, error) {
		return evalKeys(keys, args[0].AsTuple())
	}}
}

func evalKeys(keys []pig.Expr, t *nested.Tuple) (nested.Value, error) {
	if len(keys) == 1 {
		return keys[0].Eval(t)
	}
	vals := make([]nested.Value, len(keys))
	for i, k := range keys {
		v, err := k.Eval(t)
		if err != nil {
			return nested.Null(), err
		}
		vals[i] = v
	}
	return nested.TupleVal(nested.NewTuple(vals...)), nil
}

// keysEqualPred compares the keys of two bound tuples.
func keysEqualPred(outerKeys []pig.Expr, outerVar string, innerKeys []pig.Expr, innerVar string) Pred {
	return Pred{Name: "keyEq", Args: []Expr{Var{outerVar}, Var{innerVar}}, Fn: func(args []nested.Value) (bool, error) {
		a, err := evalKeys(outerKeys, args[0].AsTuple())
		if err != nil {
			return false, err
		}
		b, err := evalKeys(innerKeys, args[1].AsTuple())
		if err != nil {
			return false, err
		}
		return a.Equal(b), nil
	}}
}

// translateGroup renders GROUP as
// δ(⋃{ ⟨key(x), ⋃{ {y} | y ∈ A, key(y)=key(x) }⟩ | x ∈ A }).
func translateGroup(input string, keys []pig.Expr, inputs []string, allKeys [][]pig.Expr) Expr {
	fields := []Expr{keyPrim(keys, "x")}
	for i, in := range inputs {
		fields = append(fields, For{Var: "y", In: Var{in}, Body: Cond{
			Pred: keysEqualPred(keys, "x", allKeys[i], "y"),
			Then: Singleton{Elem: Var{"y"}},
		}})
	}
	return Dedup{Arg: For{Var: "x", In: Var{input}, Body: Singleton{Elem: MkTuple{Fields: fields}}}}
}

// translateCogroup generalizes the group translation to several inputs:
// the outer comprehension ranges over the union of key carriers.
func translateCogroup(inputs []string, keys [][]pig.Expr) Expr {
	// Key carrier: ⋃_i { ⟨key_i(x)⟩ | x ∈ A_i }.
	var carrier Expr
	for i, in := range inputs {
		one := For{Var: "x", In: Var{in}, Body: Singleton{Elem: MkTuple{Fields: []Expr{keyPrim(keys[i], "x")}}}}
		if carrier == nil {
			carrier = one
		} else {
			carrier = Union{L: carrier, R: one}
		}
	}
	keyOf := Prim{Name: "fst", Args: []Expr{Var{"k"}}, Fn: func(args []nested.Value) (nested.Value, error) {
		return args[0].AsTuple().Fields[0], nil
	}}
	fields := []Expr{keyOf}
	for i, in := range inputs {
		ki := keys[i]
		fields = append(fields, For{Var: "y", In: Var{in}, Body: Cond{
			Pred: Pred{Name: "keyEq", Args: []Expr{Var{"k"}, Var{"y"}}, Fn: func(args []nested.Value) (bool, error) {
				key := args[0].AsTuple().Fields[0]
				other, err := evalKeys(ki, args[1].AsTuple())
				if err != nil {
					return false, err
				}
				return key.Equal(other), nil
			}},
			Then: Singleton{Elem: Var{"y"}},
		}})
	}
	return For{Var: "k", In: Dedup{Arg: carrier}, Body: Singleton{Elem: MkTuple{Fields: fields}}}
}

// translateJoin renders the n-way equality join as nested comprehensions
// with an equality conditional and a concatenating tuple constructor.
func translateJoin(o *pig.JoinOp) Expr {
	n := len(o.InputNames)
	varName := func(i int) string { return fmt.Sprintf("x%d", i) }

	// Concatenate all bound tuples.
	var fields []Expr
	for i, in := range o.Ins {
		for j := 0; j < in.Arity(); j++ {
			fields = append(fields, Proj{Tuple: Var{varName(i)}, Index: j})
		}
	}
	body := Expr(Singleton{Elem: MkTuple{Fields: fields}})

	// Wrap equality conditions (each input against the first).
	for i := n - 1; i >= 1; i-- {
		body = Cond{Pred: keysEqualPred(o.Keys[0], varName(0), o.Keys[i], varName(i)), Then: body}
	}
	for i := n - 1; i >= 0; i-- {
		body = For{Var: varName(i), In: Var{o.InputNames[i]}, Body: body}
	}
	return body
}

// translateForeach renders FOREACH: one result tuple per input tuple, with
// aggregate and UDF items as base operations and FLATTEN items as nested
// comprehensions.
func translateForeach(o *pig.ForeachOp) (Expr, error) {
	flattens := 0
	for i := range o.Items {
		if o.Items[i].Kind == pig.ItemFlattenBag || o.Items[i].Kind == pig.ItemFlattenUDF {
			flattens++
		}
	}
	if flattens > 1 {
		return nil, fmt.Errorf("nrc: translation supports at most one FLATTEN per FOREACH")
	}

	var fields []Expr
	var flattenIn Expr // the bag the single FLATTEN ranges over
	flattenArity := 0
	for i := range o.Items {
		item := &o.Items[i]
		switch item.Kind {
		case pig.ItemExpr:
			fields = append(fields, exprPrim(item.Expr, "x"))
		case pig.ItemStar:
			for j := 0; j < o.In.Arity(); j++ {
				fields = append(fields, Proj{Tuple: Var{"x"}, Index: j})
			}
		case pig.ItemAgg:
			fields = append(fields, aggPrim(item))
		case pig.ItemUDF:
			fields = append(fields, udfPrim(item))
		case pig.ItemFlattenBag:
			path := item.BagPath
			flattenIn = Prim{Name: "bagAt", Args: []Expr{Var{"x"}}, Fn: func(args []nested.Value) (nested.Value, error) {
				return bagAt(path, args[0].AsTuple())
			}}
			flattenArity = len(item.Names)
			for j := 0; j < flattenArity; j++ {
				fields = append(fields, Proj{Tuple: Var{"y"}, Index: j})
			}
		case pig.ItemFlattenUDF:
			flattenIn = udfPrim(item)
			flattenArity = len(item.Names)
			for j := 0; j < flattenArity; j++ {
				fields = append(fields, Proj{Tuple: Var{"y"}, Index: j})
			}
		}
	}
	inner := Expr(Singleton{Elem: MkTuple{Fields: fields}})
	if flattenIn != nil {
		inner = For{Var: "y", In: flattenIn, Body: inner}
	}
	return For{Var: "x", In: Var{o.Input}, Body: inner}, nil
}

func bagAt(path []int, t *nested.Tuple) (nested.Value, error) {
	cur := t
	for i, idx := range path {
		if idx >= cur.Arity() {
			return nested.Null(), fmt.Errorf("nrc: bag path out of range")
		}
		v := cur.Fields[idx]
		if i == len(path)-1 {
			return v, nil
		}
		if v.Kind() != nested.KindTuple {
			return nested.Null(), fmt.Errorf("nrc: bag path traverses %s", v.Kind())
		}
		cur = v.AsTuple()
	}
	return nested.Null(), fmt.Errorf("nrc: empty bag path")
}

// aggPrim evaluates an aggregate item as a base operation over the tuple's
// nested bag.
func aggPrim(item *pig.Item) Prim {
	it := *item
	return Prim{Name: it.AggOp.String(), Args: []Expr{Var{"x"}}, Fn: func(args []nested.Value) (nested.Value, error) {
		bv, err := bagAt(it.BagPath, args[0].AsTuple())
		if err != nil {
			return nested.Null(), err
		}
		return eval.AggregateBag(it.AggOp, bv.AsBag(), it.InnerIdx, it.Types[0].Kind)
	}}
}

// udfPrim evaluates a UDF item as a base operation.
func udfPrim(item *pig.Item) Prim {
	it := *item
	return Prim{Name: it.UDF.Name, Args: []Expr{Var{"x"}}, Fn: func(args []nested.Value) (nested.Value, error) {
		t := args[0].AsTuple()
		udfArgs := make([]nested.Value, len(it.Args))
		for i, a := range it.Args {
			v, err := a.Eval(t)
			if err != nil {
				return nested.Null(), err
			}
			udfArgs[i] = v
		}
		bag, err := it.UDF.Fn(udfArgs)
		if err != nil {
			return nested.Null(), err
		}
		return nested.BagVal(bag), nil
	}}
}

// RunPlan translates and evaluates every step of a plan against the
// environment, binding each target relation (as a bag value).
func RunPlan(plan *pig.Plan, env *Env) error {
	for _, step := range plan.Steps {
		expr, err := Translate(step.Op)
		if err != nil {
			return fmt.Errorf("nrc: step %s: %w", step.Target, err)
		}
		v, err := expr.Eval(env)
		if err != nil {
			return fmt.Errorf("nrc: step %s: %w", step.Target, err)
		}
		env.Bind(step.Target, v)
	}
	return nil
}
