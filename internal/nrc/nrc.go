// Package nrc implements the bag-semantics Nested Relational Calculus
// (Buneman et al., TCS 1995), the formal foundation the paper translates
// Pig Latin into ("Pig Latin expressions (without UDFs) can be translated
// into the bag semantics version of the nested relational calculus",
// Section 2.1). The calculus here is parameterized by base operations
// (scalar functions and predicates), has the standard collection
// constructs — singleton, empty, (additive) union, and the comprehension
// "for x in e1 union e2" — plus duplicate elimination δ and aggregation,
// matching the fragment of [2, 14] the provenance framework is built on.
//
// Package pig's operators translate into this calculus (Translate); the
// tests check that translated programs evaluate to the same bags as the
// direct evaluation engine, which is the semantic backbone for the
// provenance construction's correctness.
package nrc

import (
	"fmt"

	"lipstick/internal/nested"
)

// Expr is an NRC expression.
type Expr interface {
	// Eval computes the expression's value in the environment.
	Eval(env *Env) (nested.Value, error)
	// String renders a calculus-style form.
	String() string
}

// Env binds variables to values.
type Env struct {
	vars map[string]nested.Value
}

// NewEnv builds an environment from bindings.
func NewEnv() *Env { return &Env{vars: map[string]nested.Value{}} }

// Bind sets a variable (returning a derived environment is avoided for
// performance; Eval saves/restores).
func (e *Env) Bind(name string, v nested.Value) { e.vars[name] = v }

// Lookup reads a variable.
func (e *Env) Lookup(name string) (nested.Value, bool) {
	v, ok := e.vars[name]
	return v, ok
}

// Var references a bound variable (an input relation or a comprehension
// binder).
type Var struct{ Name string }

// Const is a constant value.
type Const struct{ Value nested.Value }

// MkTuple builds a tuple from component expressions.
type MkTuple struct{ Fields []Expr }

// Proj projects the i-th component of a tuple.
type Proj struct {
	Tuple Expr
	Index int
}

// Singleton is the bag {e}.
type Singleton struct{ Elem Expr }

// EmptyBag is the bag {}.
type EmptyBag struct{}

// Union is additive bag union.
type Union struct{ L, R Expr }

// For is the comprehension ⋃{ Body | Var ∈ In }: Body (a bag) is
// evaluated for every element of In (with multiplicity) and the results
// are bag-unioned — NRC's ext/flatmap.
type For struct {
	Var  string
	In   Expr
	Body Expr
}

// Cond is "if P then e else {}" — the positive conditional of the
// fragment.
type Cond struct {
	Pred Pred
	Then Expr
}

// Dedup is duplicate elimination δ(e).
type Dedup struct{ Arg Expr }

// Prim applies a named base operation to argument values; NRC is
// parameterized over such base functions (scalar arithmetic, comparisons
// on base types, aggregation of a bag value).
type Prim struct {
	Name string
	Args []Expr
	Fn   func(args []nested.Value) (nested.Value, error)
}

// Pred is a boolean condition over the environment.
type Pred struct {
	Name string
	Args []Expr
	Fn   func(args []nested.Value) (bool, error)
}

// Eval implements Expr.
func (v Var) Eval(env *Env) (nested.Value, error) {
	val, ok := env.Lookup(v.Name)
	if !ok {
		return nested.Null(), fmt.Errorf("nrc: unbound variable %q", v.Name)
	}
	return val, nil
}

// Eval implements Expr.
func (c Const) Eval(*Env) (nested.Value, error) { return c.Value, nil }

// Eval implements Expr.
func (t MkTuple) Eval(env *Env) (nested.Value, error) {
	fields := make([]nested.Value, len(t.Fields))
	for i, f := range t.Fields {
		v, err := f.Eval(env)
		if err != nil {
			return nested.Null(), err
		}
		fields[i] = v
	}
	return nested.TupleVal(nested.NewTuple(fields...)), nil
}

// Eval implements Expr.
func (p Proj) Eval(env *Env) (nested.Value, error) {
	v, err := p.Tuple.Eval(env)
	if err != nil {
		return nested.Null(), err
	}
	if v.Kind() != nested.KindTuple {
		return nested.Null(), fmt.Errorf("nrc: projection from %s", v.Kind())
	}
	t := v.AsTuple()
	if p.Index < 0 || p.Index >= t.Arity() {
		return nested.Null(), fmt.Errorf("nrc: projection index %d out of range", p.Index)
	}
	return t.Fields[p.Index], nil
}

// Eval implements Expr.
func (s Singleton) Eval(env *Env) (nested.Value, error) {
	v, err := s.Elem.Eval(env)
	if err != nil {
		return nested.Null(), err
	}
	if v.Kind() != nested.KindTuple {
		return nested.Null(), fmt.Errorf("nrc: singleton of non-tuple %s", v.Kind())
	}
	return nested.BagVal(nested.NewBag(v.AsTuple())), nil
}

// Eval implements Expr.
func (EmptyBag) Eval(*Env) (nested.Value, error) {
	return nested.BagVal(nested.NewBag()), nil
}

// Eval implements Expr.
func (u Union) Eval(env *Env) (nested.Value, error) {
	l, err := u.L.Eval(env)
	if err != nil {
		return nested.Null(), err
	}
	r, err := u.R.Eval(env)
	if err != nil {
		return nested.Null(), err
	}
	if l.Kind() != nested.KindBag || r.Kind() != nested.KindBag {
		return nested.Null(), fmt.Errorf("nrc: union of %s and %s", l.Kind(), r.Kind())
	}
	out := nested.NewBag()
	out.Tuples = append(out.Tuples, l.AsBag().Tuples...)
	out.Tuples = append(out.Tuples, r.AsBag().Tuples...)
	return nested.BagVal(out), nil
}

// Eval implements Expr.
func (f For) Eval(env *Env) (nested.Value, error) {
	in, err := f.In.Eval(env)
	if err != nil {
		return nested.Null(), err
	}
	if in.Kind() != nested.KindBag {
		return nested.Null(), fmt.Errorf("nrc: for over %s", in.Kind())
	}
	saved, had := env.Lookup(f.Var)
	out := nested.NewBag()
	for _, t := range in.AsBag().Tuples {
		env.Bind(f.Var, nested.TupleVal(t))
		body, err := f.Body.Eval(env)
		if err != nil {
			return nested.Null(), err
		}
		if body.Kind() != nested.KindBag {
			return nested.Null(), fmt.Errorf("nrc: for body is %s, not a bag", body.Kind())
		}
		out.Tuples = append(out.Tuples, body.AsBag().Tuples...)
	}
	if had {
		env.Bind(f.Var, saved)
	} else {
		delete(env.vars, f.Var)
	}
	return nested.BagVal(out), nil
}

// Eval implements Expr.
func (c Cond) Eval(env *Env) (nested.Value, error) {
	args := make([]nested.Value, len(c.Pred.Args))
	for i, a := range c.Pred.Args {
		v, err := a.Eval(env)
		if err != nil {
			return nested.Null(), err
		}
		args[i] = v
	}
	ok, err := c.Pred.Fn(args)
	if err != nil {
		return nested.Null(), err
	}
	if !ok {
		return nested.BagVal(nested.NewBag()), nil
	}
	return c.Then.Eval(env)
}

// Eval implements Expr.
func (d Dedup) Eval(env *Env) (nested.Value, error) {
	v, err := d.Arg.Eval(env)
	if err != nil {
		return nested.Null(), err
	}
	if v.Kind() != nested.KindBag {
		return nested.Null(), fmt.Errorf("nrc: δ over %s", v.Kind())
	}
	seen := map[string]bool{}
	out := nested.NewBag()
	for _, t := range v.AsBag().Tuples {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out.Add(t)
		}
	}
	return nested.BagVal(out), nil
}

// Eval implements Expr.
func (p Prim) Eval(env *Env) (nested.Value, error) {
	args := make([]nested.Value, len(p.Args))
	for i, a := range p.Args {
		v, err := a.Eval(env)
		if err != nil {
			return nested.Null(), err
		}
		args[i] = v
	}
	return p.Fn(args)
}

// String implements Expr.
func (v Var) String() string { return v.Name }

// String implements Expr.
func (c Const) String() string { return c.Value.String() }

// String implements Expr.
func (t MkTuple) String() string {
	s := "⟨"
	for i, f := range t.Fields {
		if i > 0 {
			s += ", "
		}
		s += f.String()
	}
	return s + "⟩"
}

// String implements Expr.
func (p Proj) String() string { return fmt.Sprintf("%s.%d", p.Tuple.String(), p.Index) }

// String implements Expr.
func (s Singleton) String() string { return "{" + s.Elem.String() + "}" }

// String implements Expr.
func (EmptyBag) String() string { return "{}" }

// String implements Expr.
func (u Union) String() string { return u.L.String() + " ⊎ " + u.R.String() }

// String implements Expr.
func (f For) String() string {
	return fmt.Sprintf("⋃{%s | %s ∈ %s}", f.Body.String(), f.Var, f.In.String())
}

// String implements Expr.
func (c Cond) String() string {
	return fmt.Sprintf("if %s then %s else {}", c.Pred.Name, c.Then.String())
}

// String implements Expr.
func (d Dedup) String() string { return "δ(" + d.Arg.String() + ")" }

// String implements Expr.
func (p Prim) String() string {
	s := p.Name + "("
	for i, a := range p.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
