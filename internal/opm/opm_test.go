package opm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lipstick/internal/provgraph"
)

// buildChain builds I -> M_a -> M_b with one tuple flowing through.
func buildChain() (*provgraph.Graph, provgraph.NodeID) {
	b := provgraph.NewBuilder()
	in := b.WorkflowInput("I0")
	invA := b.BeginInvocation("M_a", "a", 0)
	iA := b.ModuleInput(invA, in)
	oA := b.ModuleOutput(invA, iA)
	invB := b.BeginInvocation("M_b", "b", 0)
	iB := b.ModuleInput(invB, oA)
	oB := b.ModuleOutput(invB, iB)
	return b.G, oB
}

func TestExportShape(t *testing.T) {
	g, _ := buildChain()
	doc := Export(g)
	if len(doc.Processes) != 2 {
		t.Fatalf("processes = %d", len(doc.Processes))
	}
	// Artifacts: 1 workflow input + 2 module inputs + 2 module outputs.
	if len(doc.Artifacts) != 5 {
		t.Fatalf("artifacts = %d, want 5", len(doc.Artifacts))
	}
	kinds := map[string]int{}
	for _, e := range doc.Edges {
		kinds[e.Kind]++
	}
	if kinds["used"] != 2 || kinds["wasGeneratedBy"] != 2 || kinds["wasDerivedFrom"] != 2 {
		t.Errorf("edge kinds = %v", kinds)
	}
}

func TestExportSkipsFineInternals(t *testing.T) {
	b := provgraph.NewBuilder()
	in := b.WorkflowInput("I0")
	inv := b.BeginInvocation("M_x", "x", 0)
	i := b.ModuleInput(inv, in)
	p := b.Project(i) // fine-grained internal
	j := b.Join(p, p)
	b.ModuleOutput(inv, j)
	doc := Export(b.G)
	for _, a := range doc.Artifacts {
		if a.Role != "workflow-input" && a.Role != "module-input" && a.Role != "module-output" {
			t.Errorf("unexpected artifact role %q", a.Role)
		}
	}
	if len(doc.Artifacts) != 3 {
		t.Errorf("artifacts = %d, want 3 (internals must not export)", len(doc.Artifacts))
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	g, _ := buildChain()
	doc := Export(g)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Artifacts) != len(doc.Artifacts) || len(back.Edges) != len(doc.Edges) {
		t.Error("JSON round-trip changed counts")
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := buildChain()
	doc := Export(g)
	var buf bytes.Buffer
	if err := doc.WriteDOT(&buf, "opm"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "shape=box", "shape=ellipse", "used", "wasGeneratedBy", "wasDerivedFrom", "M_a@0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestExportAfterDeletion(t *testing.T) {
	g, out := buildChain()
	g.Delete(out) // removes only the final output artifact
	doc := Export(g)
	for _, e := range doc.Edges {
		if e.Kind == "wasGeneratedBy" && e.From == "a5" {
			t.Error("dead artifact exported")
		}
	}
}
