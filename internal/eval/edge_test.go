package eval

import (
	"math/rand"
	"testing"

	"lipstick/internal/nested"
	"lipstick/internal/pig"
	"lipstick/internal/provgraph"
)

// TestDoubleFlattenCrossProduct: two FLATTEN items over different bags
// cross-multiply, with ·-provenance over the outer tuple and both members.
func TestDoubleFlattenCrossProduct(t *testing.T) {
	schemas := nested.RelationSchemas{
		"A": nested.NewSchema(
			nested.Field{Name: "k", Type: nested.ScalarType(nested.KindInt)},
			nested.Field{Name: "x", Type: nested.ScalarType(nested.KindInt)},
		),
		"B": nested.NewSchema(
			nested.Field{Name: "j", Type: nested.ScalarType(nested.KindInt)},
			nested.Field{Name: "y", Type: nested.ScalarType(nested.KindInt)},
		),
	}
	src := `CG = COGROUP A BY k, B BY j; F = FOREACH CG GENERATE group, FLATTEN(A), FLATTEN(B);`
	plan, err := pig.CompileSource(src, schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := provgraph.NewBuilder()
	env := NewEnv()
	a := NewRelation(schemas["A"])
	a.Add(b, AnnTuple{Tuple: nested.NewTuple(nested.Int(1), nested.Int(10)), Prov: b.BaseTuple("a0"), Mult: 1})
	a.Add(b, AnnTuple{Tuple: nested.NewTuple(nested.Int(1), nested.Int(11)), Prov: b.BaseTuple("a1"), Mult: 1})
	bb := NewRelation(schemas["B"])
	bb.Add(b, AnnTuple{Tuple: nested.NewTuple(nested.Int(1), nested.Int(20)), Prov: b.BaseTuple("b0"), Mult: 1})
	bb.Add(b, AnnTuple{Tuple: nested.NewTuple(nested.Int(1), nested.Int(21)), Prov: b.BaseTuple("b1"), Mult: 1})
	env.Set("A", a)
	env.Set("B", bb)
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	f, _ := env.Rel("F")
	if f.Card() != 4 {
		t.Fatalf("cross product card = %d, want 4 (%v)", f.Card(), f)
	}
	// Each result has a · node over {group δ, a-member, b-member}.
	for _, tup := range f.Tuples {
		n := b.G.Node(tup.Prov)
		if n.Op != provgraph.OpTimes {
			t.Errorf("flatten result should be ·-annotated, got %s", n.Op)
		}
		if got := len(b.G.In(tup.Prov)); got != 3 {
			t.Errorf("flatten · should have 3 sources, has %d", got)
		}
	}
	if !b.G.IsAcyclic() {
		t.Error("graph must stay acyclic")
	}
}

// TestRebindSharesIndex: Rebind preserves lookups without recomputing keys
// and maps annotations.
func TestRebindSharesIndex(t *testing.T) {
	schema := nested.NewSchema(nested.Field{Name: "x", Type: nested.ScalarType(nested.KindInt)})
	r := NewRelation(schema)
	for i := int64(0); i < 5; i++ {
		r.Add(nil, AnnTuple{Tuple: nested.NewTuple(nested.Int(i)), Prov: provgraph.NodeID(i), Mult: 2})
	}
	bound := r.Rebind(func(t AnnTuple) AnnTuple {
		t.Prov = t.Prov + 100
		return t
	})
	if bound.Len() != 5 || bound.Card() != 10 {
		t.Fatalf("rebind len=%d card=%d", bound.Len(), bound.Card())
	}
	got, ok := bound.Lookup(nested.NewTuple(nested.Int(3)))
	if !ok || got.Prov != 103 || got.Mult != 2 {
		t.Errorf("rebound lookup = %+v, %v", got, ok)
	}
	// Original untouched.
	orig, _ := r.Lookup(nested.NewTuple(nested.Int(3)))
	if orig.Prov != 3 {
		t.Error("rebind mutated the original")
	}
}

// TestLazyAnnTupleMemoizes: the deferred node is created once and shared
// across copies.
func TestLazyAnnTupleMemoizes(t *testing.T) {
	calls := 0
	lt := LazyAnnTuple(nested.NewTuple(nested.Int(1)), 1, func() provgraph.NodeID {
		calls++
		return provgraph.NodeID(7)
	})
	cp := lt // value copy shares the cell
	if lt.Node() != 7 || cp.Node() != 7 || lt.Node() != 7 {
		t.Error("wrong node")
	}
	if calls != 1 {
		t.Errorf("constructor called %d times, want 1", calls)
	}
	plain := AnnTuple{Tuple: nested.NewTuple(nested.Int(1)), Prov: 9, Mult: 1}
	if plain.Node() != 9 {
		t.Error("non-lazy Node() should return Prov")
	}
}

// TestOrderByComputedKey sorts by an arithmetic expression.
func TestOrderByComputedKey(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("O = ORDER A BY (x % 3), x;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Set("A", intRel(schemas["A"], nil, 5, 3, 1, 4, 2))
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	o, _ := env.Rel("O")
	var got []int64
	for _, tup := range o.Tuples {
		got = append(got, tup.Tuple.Fields[0].AsInt())
	}
	want := []int64{3, 1, 4, 2, 5} // keyed by (x%3, x): (0,3),(1,1),(1,4),(2,2),(2,5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestFromBagToBagRoundTrip is a property test over random bags.
func TestFromBagToBagRoundTrip(t *testing.T) {
	schema := intSchema()
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		bag := nested.NewBag()
		for i, n := 0, r.Intn(10); i < n; i++ {
			bag.Add(nested.NewTuple(nested.Int(int64(r.Intn(4)))))
		}
		rel := FromBag(schema, bag)
		if !rel.ToBag().Equal(bag) {
			t.Fatalf("seed %d: round trip failed: %v vs %v", seed, rel.ToBag(), bag)
		}
	}
}

// TestGroupByComputedAndCompositeKeys exercises multi-key grouping with
// nested key tuples in tracked mode.
func TestGroupByCompositeKeysTracked(t *testing.T) {
	schemas := nested.RelationSchemas{
		"A": nested.NewSchema(
			nested.Field{Name: "a", Type: nested.ScalarType(nested.KindInt)},
			nested.Field{Name: "b", Type: nested.ScalarType(nested.KindInt)},
		),
	}
	plan, err := pig.CompileSource("G = GROUP A BY (a, b % 2); C = FOREACH G GENERATE group, COUNT(A) AS n;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := provgraph.NewBuilder()
	env := NewEnv()
	rel := NewRelation(schemas["A"])
	for i, row := range [][2]int64{{1, 1}, {1, 3}, {1, 2}, {2, 1}} {
		rel.Add(b, AnnTuple{Tuple: nested.NewTuple(nested.Int(row[0]), nested.Int(row[1])),
			Prov: b.BaseTuple("t" + string(rune('0'+i))), Mult: 1})
	}
	env.Set("A", rel)
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	c, _ := env.Rel("C")
	if c.Len() != 3 {
		t.Fatalf("groups = %d, want 3 (%v)", c.Len(), c)
	}
	key := nested.TupleVal(nested.NewTuple(nested.Int(1), nested.Int(1)))
	if _, ok := c.Lookup(nested.NewTuple(key, nested.Int(2))); !ok {
		t.Errorf("missing (1,odd) group with count 2: %v", c)
	}
}
