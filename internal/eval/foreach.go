package eval

import (
	"fmt"

	"lipstick/internal/nested"
	"lipstick/internal/pig"
	"lipstick/internal/provgraph"
	"lipstick/internal/semiring"
)

// runForeach evaluates FOREACH ... GENERATE. Non-flatten FOREACH produces
// one result tuple per input tuple, merged per distinct result under a
// single + node (the projection rule of Section 3.2); aggregation items
// additionally build ⊗/aggregate v-nodes; FLATTEN items cross the input
// tuple with nested-bag members under · nodes.
func (e *Engine) runForeach(o *pig.ForeachOp, env *Env) (*Relation, error) {
	in, err := env.Rel(o.Input)
	if err != nil {
		return nil, err
	}
	if o.HasFlatten {
		return e.runForeachFlatten(o, in, env)
	}

	// deriv accumulates the contributions to one distinct result tuple.
	type deriv struct {
		tuple      *nested.Tuple
		sources    []provgraph.NodeID
		valueNodes []provgraph.NodeID
		mult       int
	}
	var order []string
	derivs := map[string]*deriv{}

	for _, t := range in.Tuples {
		fields := make([]nested.Value, 0, len(o.Items))
		var valueNodes []provgraph.NodeID
		for i := range o.Items {
			item := &o.Items[i]
			switch item.Kind {
			case pig.ItemExpr:
				v, err := item.Expr.Eval(t.Tuple)
				if err != nil {
					return nil, err
				}
				fields = append(fields, v)
			case pig.ItemStar:
				fields = append(fields, t.Tuple.Fields...)
			case pig.ItemAgg:
				v, node, err := e.evalAggItem(item, t, env)
				if err != nil {
					return nil, err
				}
				fields = append(fields, v)
				if node != provgraph.InvalidNode {
					valueNodes = append(valueNodes, node)
				}
			case pig.ItemUDF:
				v, node, err := e.evalUDFItem(item, t, env)
				if err != nil {
					return nil, err
				}
				fields = append(fields, v)
				if node != provgraph.InvalidNode {
					valueNodes = append(valueNodes, node)
				}
			default:
				return nil, fmt.Errorf("unexpected item kind %d in non-flatten FOREACH", item.Kind)
			}
		}
		tuple := nested.NewTuple(fields...)
		key := tuple.Key()
		d, ok := derivs[key]
		if !ok {
			d = &deriv{tuple: tuple}
			derivs[key] = d
			order = append(order, key)
		}
		d.sources = append(d.sources, t.Node())
		d.valueNodes = append(d.valueNodes, valueNodes...)
		d.mult += t.Mult
	}

	res := NewRelation(o.Out)
	for _, key := range order {
		d := derivs[key]
		prov := provgraph.InvalidNode
		if e.b != nil {
			prov = e.b.Project(d.sources...)
			for _, vn := range d.valueNodes {
				e.b.AddEdge(vn, prov)
			}
		}
		res.Add(e.b, AnnTuple{Tuple: d.tuple, Prov: prov, Mult: d.mult})
	}
	return res, nil
}

// locateBag walks the item's BagPath on the tuple and returns the bag.
func locateBag(path []int, t *nested.Tuple) (*nested.Bag, error) {
	cur := t
	for i, idx := range path {
		if idx >= len(cur.Fields) {
			return nil, fmt.Errorf("bag path index %d out of range", idx)
		}
		v := cur.Fields[idx]
		if i == len(path)-1 {
			if v.Kind() != nested.KindBag {
				return nil, fmt.Errorf("bag path ends at %s value", v.Kind())
			}
			return v.AsBag(), nil
		}
		if v.Kind() != nested.KindTuple {
			return nil, fmt.Errorf("bag path traverses %s value", v.Kind())
		}
		cur = v.AsTuple()
	}
	return nil, fmt.Errorf("empty bag path")
}

// evalAggItem computes one aggregate over the nested bag of the current
// tuple, returning the aggregated value and (in tracked mode) the
// aggregate v-node with its ⊗ contributions.
func (e *Engine) evalAggItem(item *pig.Item, owner AnnTuple, env *Env) (nested.Value, provgraph.NodeID, error) {
	bag, err := locateBag(item.BagPath, owner.Tuple)
	if err != nil {
		return nested.Null(), provgraph.InvalidNode, err
	}
	members := env.Bags.Members(bag, owner)

	sum, count := 0.0, 0
	lo, hi := 0.0, 0.0
	first := true
	var contribs []provgraph.AggContribution
	for _, m := range members {
		var raw nested.Value
		if item.InnerIdx >= 0 {
			if item.InnerIdx >= m.Tuple.Arity() {
				return nested.Null(), provgraph.InvalidNode, fmt.Errorf("aggregate field $%d out of range", item.InnerIdx)
			}
			raw = m.Tuple.Fields[item.InnerIdx]
		} else {
			raw = nested.Int(1) // COUNT counts tuples
		}
		if raw.IsNull() {
			continue // aggregates ignore nulls
		}
		v, ok := raw.Numeric()
		if !ok {
			return nested.Null(), provgraph.InvalidNode, fmt.Errorf("aggregate over non-numeric %s", raw.Kind())
		}
		count += m.Mult
		sum += float64(m.Mult) * v
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
		if e.b != nil {
			contribs = append(contribs, provgraph.AggContribution{TupleProv: m.Node(), Value: raw})
		}
	}

	value := aggResult(item.AggOp, item.Types[0].Kind, sum, count, lo, hi, first)
	node := provgraph.InvalidNode
	if e.b != nil {
		node = e.b.Aggregate(item.AggOp.String(), contribs, value)
	}
	return value, node, nil
}

// AggregateBag folds one field of a plain bag (duplicates explicit) with
// the given operation — the value-level semantics of FOREACH aggregation,
// shared with the NRC translation. innerIdx < 0 counts tuples.
func AggregateBag(op semiring.AggOp, bag *nested.Bag, innerIdx int, kind nested.Kind) (nested.Value, error) {
	sum, count := 0.0, 0
	lo, hi := 0.0, 0.0
	first := true
	for _, t := range bag.Tuples {
		var raw nested.Value
		if innerIdx >= 0 {
			if innerIdx >= t.Arity() {
				return nested.Null(), fmt.Errorf("aggregate field $%d out of range", innerIdx)
			}
			raw = t.Fields[innerIdx]
		} else {
			raw = nested.Int(1)
		}
		if raw.IsNull() {
			continue
		}
		v, ok := raw.Numeric()
		if !ok {
			return nested.Null(), fmt.Errorf("aggregate over non-numeric %s", raw.Kind())
		}
		count++
		sum += v
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return aggResult(op, kind, sum, count, lo, hi, first), nil
}

// aggResult folds the accumulators into the typed aggregate value.
// empty reports whether no non-null contribution was seen: COUNT yields 0,
// every other aggregate yields null (there is nothing to aggregate).
func aggResult(op semiring.AggOp, kind nested.Kind, sum float64, count int, lo, hi float64, empty bool) nested.Value {
	if op == semiring.AggCount {
		return nested.Int(int64(count))
	}
	if empty {
		return nested.Null()
	}
	mk := func(f float64) nested.Value {
		if kind == nested.KindInt {
			return nested.Int(int64(f))
		}
		return nested.Float(f)
	}
	switch op {
	case semiring.AggSum:
		return mk(sum)
	case semiring.AggMin:
		return mk(lo)
	case semiring.AggMax:
		return mk(hi)
	case semiring.AggAvg:
		return nested.Float(sum / float64(count))
	default:
		return nested.Null()
	}
}

// evalUDFItem invokes a black box, returning its result bag as a value and
// (tracked) the BB v-node; the returned bag's members are annotated with
// the BB node so later aggregation/flattening stays connected.
func (e *Engine) evalUDFItem(item *pig.Item, owner AnnTuple, env *Env) (nested.Value, provgraph.NodeID, error) {
	args := make([]nested.Value, len(item.Args))
	for i, a := range item.Args {
		v, err := a.Eval(owner.Tuple)
		if err != nil {
			return nested.Null(), provgraph.InvalidNode, err
		}
		args[i] = v
	}
	bag, err := item.UDF.Fn(args)
	if err != nil {
		return nested.Null(), provgraph.InvalidNode, fmt.Errorf("UDF %s: %w", item.UDF.Name, err)
	}
	if err := item.UDF.OutSchema.ValidateBag(bag); err != nil {
		return nested.Null(), provgraph.InvalidNode, fmt.Errorf("UDF %s output: %w", item.UDF.Name, err)
	}
	node := provgraph.InvalidNode
	if e.b != nil {
		node = e.b.BlackBox(item.UDF.Name, true, nested.BagVal(bag), owner.Node())
		members := make([]AnnTuple, len(bag.Tuples))
		for i, t := range bag.Tuples {
			members[i] = AnnTuple{Tuple: t, Prov: node, Mult: 1}
		}
		env.Bags.Annotate(bag, members)
	}
	return nested.BagVal(bag), node, nil
}

// flatPart is one flattened item's expansion for the current input tuple:
// each alternative contributes a slice of fields, an optional member
// p-node, and a multiplicity.
type flatPart struct {
	alternatives []flatAlt
	// bbNode is the black-box v-node for UDF flattens (wired into every
	// result tuple of this input tuple).
	bbNode provgraph.NodeID
}

type flatAlt struct {
	fields []nested.Value
	prov   provgraph.NodeID
	mult   int
}

// runForeachFlatten evaluates a FOREACH with at least one FLATTEN item:
// the input tuple is crossed with the members of each flattened bag; each
// result tuple is ·-derived from the input tuple and the members
// (Section 3.2's FLATTEN provenance), with UDF results contributing their
// black-box node.
func (e *Engine) runForeachFlatten(o *pig.ForeachOp, in *Relation, env *Env) (*Relation, error) {
	res := NewRelation(o.Out)
	for _, t := range in.Tuples {
		parts := make([]flatPart, len(o.Items))
		for i := range o.Items {
			item := &o.Items[i]
			part := flatPart{bbNode: provgraph.InvalidNode}
			switch item.Kind {
			case pig.ItemExpr:
				v, err := item.Expr.Eval(t.Tuple)
				if err != nil {
					return nil, err
				}
				part.alternatives = []flatAlt{{fields: []nested.Value{v}, prov: provgraph.InvalidNode, mult: 1}}
			case pig.ItemStar:
				part.alternatives = []flatAlt{{fields: t.Tuple.Fields, prov: provgraph.InvalidNode, mult: 1}}
			case pig.ItemUDF:
				v, node, err := e.evalUDFItem(item, t, env)
				if err != nil {
					return nil, err
				}
				part.alternatives = []flatAlt{{fields: []nested.Value{v}, prov: provgraph.InvalidNode, mult: 1}}
				part.bbNode = node
			case pig.ItemFlattenBag:
				bag, err := locateBag(item.BagPath, t.Tuple)
				if err != nil {
					return nil, err
				}
				for _, m := range env.Bags.Members(bag, t) {
					part.alternatives = append(part.alternatives, flatAlt{fields: m.Tuple.Fields, prov: m.Node(), mult: m.Mult})
				}
			case pig.ItemFlattenUDF:
				args := make([]nested.Value, len(item.Args))
				for ai, a := range item.Args {
					v, err := a.Eval(t.Tuple)
					if err != nil {
						return nil, err
					}
					args[ai] = v
				}
				bag, err := item.UDF.Fn(args)
				if err != nil {
					return nil, fmt.Errorf("UDF %s: %w", item.UDF.Name, err)
				}
				if err := item.UDF.OutSchema.ValidateBag(bag); err != nil {
					return nil, fmt.Errorf("UDF %s output: %w", item.UDF.Name, err)
				}
				if e.b != nil {
					part.bbNode = e.b.BlackBox(item.UDF.Name, true, nested.BagVal(bag), t.Node())
				}
				for _, m := range bag.Tuples {
					part.alternatives = append(part.alternatives, flatAlt{fields: m.Fields, prov: provgraph.InvalidNode, mult: 1})
				}
			default:
				return nil, fmt.Errorf("unexpected item kind %d in flatten FOREACH", item.Kind)
			}
			parts[i] = part
		}
		e.expandFlatten(res, t, parts, 0, nil, nil, 1)
	}
	return res, nil
}

// expandFlatten recursively emits the cross product of part alternatives.
func (e *Engine) expandFlatten(res *Relation, owner AnnTuple, parts []flatPart, idx int, fields []nested.Value, memberProvs []provgraph.NodeID, mult int) {
	if idx == len(parts) {
		prov := provgraph.InvalidNode
		if e.b != nil {
			if len(memberProvs) > 0 {
				prov = e.b.Product(append([]provgraph.NodeID{owner.Node()}, memberProvs...)...)
			} else {
				prov = e.b.Project(owner.Node())
			}
			for _, p := range parts {
				if p.bbNode != provgraph.InvalidNode {
					e.b.AddEdge(p.bbNode, prov)
				}
			}
		}
		res.Add(e.b, AnnTuple{
			Tuple: nested.NewTuple(append([]nested.Value(nil), fields...)...),
			Prov:  prov,
			Mult:  owner.Mult * mult,
		})
		return
	}
	for _, alt := range parts[idx].alternatives {
		nf := append(fields, alt.fields...)
		np := memberProvs
		if alt.prov != provgraph.InvalidNode {
			np = append(append([]provgraph.NodeID(nil), memberProvs...), alt.prov)
		}
		e.expandFlatten(res, owner, parts, idx+1, nf, np, mult*alt.mult)
	}
}
