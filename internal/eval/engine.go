package eval

import (
	"fmt"
	"sort"

	"lipstick/internal/nested"
	"lipstick/internal/pig"
	"lipstick/internal/provgraph"
)

// Engine executes compiled plans against an environment. A nil Builder
// selects plain mode (no provenance); a non-nil Builder selects tracked
// mode and receives the provenance-graph nodes of Section 3.2.
type Engine struct {
	b *provgraph.Builder
}

// New returns an engine. b may be nil for plain (untracked) evaluation.
func New(b *provgraph.Builder) *Engine { return &Engine{b: b} }

// Tracked reports whether the engine builds provenance.
func (e *Engine) Tracked() bool { return e.b != nil }

// Run evaluates every step of the plan in order, binding each target
// relation in the environment.
func (e *Engine) Run(plan *pig.Plan, env *Env) error {
	for _, step := range plan.Steps {
		rel, err := e.runOp(step.Op, env)
		if err != nil {
			return fmt.Errorf("eval: step %s: %w", step.Target, err)
		}
		env.Set(step.Target, rel)
	}
	return nil
}

func (e *Engine) runOp(op pig.Operator, env *Env) (*Relation, error) {
	switch o := op.(type) {
	case *pig.ForeachOp:
		return e.runForeach(o, env)
	case *pig.FilterOp:
		return e.runFilter(o, env)
	case *pig.GroupOp:
		return e.runGroup(o, env)
	case *pig.CogroupOp:
		return e.runCogroup(o, env)
	case *pig.JoinOp:
		return e.runJoin(o, env)
	case *pig.UnionOp:
		return e.runUnion(o, env)
	case *pig.DistinctOp:
		return e.runDistinct(o, env)
	case *pig.OrderOp:
		return e.runOrder(o, env)
	case *pig.LimitOp:
		return e.runLimit(o, env)
	case *pig.AliasOp:
		in, err := env.Rel(o.Input)
		if err != nil {
			return nil, err
		}
		return in.Clone(), nil
	default:
		return nil, fmt.Errorf("unsupported operator %T", op)
	}
}

// runFilter keeps tuples satisfying the condition; annotations are
// unchanged (FILTER creates no provenance nodes).
func (e *Engine) runFilter(o *pig.FilterOp, env *Env) (*Relation, error) {
	in, err := env.Rel(o.Input)
	if err != nil {
		return nil, err
	}
	out := NewRelation(o.In)
	for _, t := range in.Tuples {
		v, err := o.Cond.Eval(t.Tuple)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			out.Add(e.b, t)
		}
	}
	return out, nil
}

// groupBucket accumulates one group during GROUP/COGROUP.
type groupBucket struct {
	key nested.Value
	// members holds, per input relation, the annotated member tuples.
	members [][]AnnTuple
}

// evalKey computes a (possibly composite) grouping key.
func evalKey(keys []pig.Expr, t *nested.Tuple) (nested.Value, error) {
	if len(keys) == 1 {
		return keys[0].Eval(t)
	}
	vals := make([]nested.Value, len(keys))
	for i, k := range keys {
		v, err := k.Eval(t)
		if err != nil {
			return nested.Null(), err
		}
		vals[i] = v
	}
	return nested.TupleVal(nested.NewTuple(vals...)), nil
}

// collectGroups buckets the tuples of several relations by key, preserving
// first-seen key order for deterministic output.
func collectGroups(rels []*Relation, keys [][]pig.Expr) ([]*groupBucket, error) {
	var order []*groupBucket
	index := map[string]*groupBucket{}
	for ri, rel := range rels {
		for _, t := range rel.Tuples {
			kv, err := evalKey(keys[ri], t.Tuple)
			if err != nil {
				return nil, err
			}
			kk := kv.Key()
			bucket, ok := index[kk]
			if !ok {
				bucket = &groupBucket{key: kv, members: make([][]AnnTuple, len(rels))}
				index[kk] = bucket
				order = append(order, bucket)
			}
			bucket.members[ri] = append(bucket.members[ri], t)
		}
	}
	return order, nil
}

// runGroup implements GROUP: one result tuple per key, δ-annotated over the
// group members, whose nested bag keeps per-member provenance.
func (e *Engine) runGroup(o *pig.GroupOp, env *Env) (*Relation, error) {
	in, err := env.Rel(o.Input)
	if err != nil {
		return nil, err
	}
	buckets, err := collectGroups([]*Relation{in}, [][]pig.Expr{o.Keys})
	if err != nil {
		return nil, err
	}
	return e.buildGrouped(o.Out, buckets, env), nil
}

// runCogroup implements COGROUP over n inputs.
func (e *Engine) runCogroup(o *pig.CogroupOp, env *Env) (*Relation, error) {
	rels := make([]*Relation, len(o.InputNames))
	for i, name := range o.InputNames {
		r, err := env.Rel(name)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	buckets, err := collectGroups(rels, o.Keys)
	if err != nil {
		return nil, err
	}
	return e.buildGrouped(o.Out, buckets, env), nil
}

// buildGrouped materializes group tuples (key, bag1, ..., bagN) with δ
// provenance nodes and nested-bag annotations.
func (e *Engine) buildGrouped(out *nested.Schema, buckets []*groupBucket, env *Env) *Relation {
	res := NewRelation(out)
	for _, bkt := range buckets {
		fields := make([]nested.Value, 1, 1+len(bkt.members))
		fields[0] = bkt.key
		var provMembers []provgraph.NodeID
		for _, members := range bkt.members {
			bag := nested.NewBag()
			for _, m := range members {
				for i := 0; i < m.Mult; i++ {
					bag.Add(m.Tuple)
				}
				if e.b != nil {
					provMembers = append(provMembers, m.Node())
				}
			}
			env.Bags.Annotate(bag, members)
			fields = append(fields, nested.BagVal(bag))
		}
		prov := provgraph.InvalidNode
		if e.b != nil {
			prov = e.b.Group(provMembers...)
		}
		res.Add(e.b, AnnTuple{Tuple: nested.NewTuple(fields...), Prov: prov, Mult: 1})
	}
	return res
}

// runJoin implements the n-way equality join: one ·-annotated derivation
// per combination of matching tuples.
func (e *Engine) runJoin(o *pig.JoinOp, env *Env) (*Relation, error) {
	rels := make([]*Relation, len(o.InputNames))
	for i, name := range o.InputNames {
		r, err := env.Rel(name)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	// Bucket every input by key; iterate keys in first-input order.
	type entry struct{ tuples []AnnTuple }
	maps := make([]map[string]*entry, len(rels))
	for i, rel := range rels {
		maps[i] = make(map[string]*entry, rel.Len())
		for _, t := range rel.Tuples {
			kv, err := evalKey(o.Keys[i], t.Tuple)
			if err != nil {
				return nil, err
			}
			kk := kv.Key()
			en, ok := maps[i][kk]
			if !ok {
				en = &entry{}
				maps[i][kk] = en
			}
			en.tuples = append(en.tuples, t)
		}
	}
	res := NewRelation(o.Out)
	var keyOrder []string
	seen := map[string]bool{}
	for _, t := range rels[0].Tuples {
		kv, err := evalKey(o.Keys[0], t.Tuple)
		if err != nil {
			return nil, err
		}
		kk := kv.Key()
		if !seen[kk] {
			seen[kk] = true
			keyOrder = append(keyOrder, kk)
		}
	}
	for _, kk := range keyOrder {
		groups := make([][]AnnTuple, len(rels))
		ok := true
		for i := range rels {
			en := maps[i][kk]
			if en == nil {
				ok = false
				break
			}
			groups[i] = en.tuples
		}
		if !ok {
			continue
		}
		e.crossJoin(res, groups, nil)
	}
	return res, nil
}

// crossJoin emits every combination of one tuple per group.
func (e *Engine) crossJoin(res *Relation, groups [][]AnnTuple, acc []AnnTuple) {
	if len(acc) == len(groups) {
		fields := make([]nested.Value, 0)
		mult := 1
		provs := make([]provgraph.NodeID, 0, len(acc))
		for _, t := range acc {
			fields = append(fields, t.Tuple.Fields...)
			mult *= t.Mult
			provs = append(provs, t.Node())
		}
		prov := provgraph.InvalidNode
		if e.b != nil {
			if len(provs) == 2 {
				prov = e.b.Join(provs[0], provs[1])
			} else {
				prov = e.b.Product(provs...)
			}
		}
		res.Add(e.b, AnnTuple{Tuple: nested.NewTuple(fields...), Prov: prov, Mult: mult})
		return
	}
	for _, t := range groups[len(acc)] {
		e.crossJoin(res, groups, append(acc, t))
	}
}

// runUnion merges inputs; equal tuples appearing in several inputs add
// their annotations (+) and multiplicities.
func (e *Engine) runUnion(o *pig.UnionOp, env *Env) (*Relation, error) {
	res := NewRelation(o.Out)
	for _, name := range o.InputNames {
		in, err := env.Rel(name)
		if err != nil {
			return nil, err
		}
		for _, t := range in.Tuples {
			res.Add(e.b, t)
		}
	}
	return res, nil
}

// runDistinct emits each distinct tuple once, δ-annotated.
func (e *Engine) runDistinct(o *pig.DistinctOp, env *Env) (*Relation, error) {
	in, err := env.Rel(o.Input)
	if err != nil {
		return nil, err
	}
	res := NewRelation(o.In)
	for _, t := range in.Tuples {
		prov := t.Prov
		if e.b != nil {
			prov = e.b.Group(t.Node())
		}
		res.Add(e.b, AnnTuple{Tuple: t.Tuple, Prov: prov, Mult: 1})
	}
	return res, nil
}

// runOrder sorts the relation; ORDER is a provenance-free post-processing
// step (end of Section 3.2), so annotations pass through untouched.
func (e *Engine) runOrder(o *pig.OrderOp, env *Env) (*Relation, error) {
	in, err := env.Rel(o.Input)
	if err != nil {
		return nil, err
	}
	res := in.Clone()
	var evalErr error
	sort.SliceStable(res.Tuples, func(i, j int) bool {
		for k, key := range o.Keys {
			vi, err := key.Eval(res.Tuples[i].Tuple)
			if err != nil {
				evalErr = err
				return false
			}
			vj, err := key.Eval(res.Tuples[j].Tuple)
			if err != nil {
				evalErr = err
				return false
			}
			c := vi.Compare(vj)
			if c != 0 {
				if o.Desc[k] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if evalErr != nil {
		return nil, evalErr
	}
	// Rebuild the index after reordering.
	res.index = make(map[string]int, len(res.Tuples))
	for i, t := range res.Tuples {
		res.index[t.Tuple.Key()] = i
	}
	return res, nil
}

// runLimit keeps the first n tuples (counting multiplicity) in relation
// order.
func (e *Engine) runLimit(o *pig.LimitOp, env *Env) (*Relation, error) {
	in, err := env.Rel(o.Input)
	if err != nil {
		return nil, err
	}
	res := NewRelation(o.In)
	remaining := o.N
	for _, t := range in.Tuples {
		if remaining <= 0 {
			break
		}
		take := t.Mult
		if int64(take) > remaining {
			take = int(remaining)
		}
		nt := t // keep the annotation (including deferred state nodes)
		nt.Mult = take
		res.Add(e.b, nt)
		remaining -= int64(take)
	}
	return res, nil
}
