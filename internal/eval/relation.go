// Package eval executes compiled Pig Latin plans over nested relations.
//
// It has two modes. In plain mode it is an ordinary bag-semantics query
// engine. In tracked mode it additionally applies the fine-grained
// provenance construction of Section 3.2 of the Lipstick paper, building
// provenance-graph nodes for every operator (+ for FOREACH projection,
// · for JOIN, δ for GROUP/COGROUP/DISTINCT, ⊗/aggregate v-nodes for
// FOREACH aggregation, black-box nodes for UDFs).
//
// Relations are represented as lists of distinct tuples annotated with a
// provenance node and a multiplicity — the N[X]-style reading where a bag
// is its support plus annotations. Plain mode uses the same representation
// with no provenance nodes; multiplicities carry the bag semantics, so the
// two modes compute identical bags (a property the tests exploit).
package eval

import (
	"fmt"

	"lipstick/internal/nested"
	"lipstick/internal/provgraph"
)

// AnnTuple is one distinct tuple of a relation with its annotation.
type AnnTuple struct {
	Tuple *nested.Tuple
	// Prov is the tuple's provenance node (InvalidNode in plain mode).
	Prov provgraph.NodeID
	// Mult is the tuple's multiplicity (bag semantics).
	Mult int
	// lazy defers node creation until the tuple is actually used in a
	// derivation. The workflow runner binds module state this way: an
	// invocation's "s" node for a state tuple materializes only when the
	// invocation's queries touch the tuple, which keeps the graph linear
	// in the touched data rather than in the full state (the behaviour
	// underlying the paper's Section 5.5 measurements).
	lazy *lazyProv
}

type lazyProv struct {
	resolved provgraph.NodeID
	make     func() provgraph.NodeID
}

// LazyAnnTuple builds an annotated tuple whose provenance node is created
// on first use by the given constructor.
func LazyAnnTuple(t *nested.Tuple, mult int, make func() provgraph.NodeID) AnnTuple {
	return AnnTuple{
		Tuple: t, Prov: provgraph.InvalidNode, Mult: mult,
		lazy: &lazyProv{resolved: provgraph.InvalidNode, make: make},
	}
}

// Node returns the tuple's provenance node, materializing it if deferred.
// The resolution is memoized across all copies of this AnnTuple.
func (t AnnTuple) Node() provgraph.NodeID {
	if t.lazy != nil {
		if t.lazy.resolved == provgraph.InvalidNode {
			t.lazy.resolved = t.lazy.make()
		}
		return t.lazy.resolved
	}
	return t.Prov
}

// Relation is a bag of tuples in support+multiplicity form.
type Relation struct {
	Schema *nested.Schema
	Tuples []AnnTuple
	index  map[string]int // canonical tuple key -> position in Tuples
}

// NewRelation returns an empty relation with the given schema.
func NewRelation(schema *nested.Schema) *Relation {
	return &Relation{Schema: schema, index: make(map[string]int)}
}

// Len returns the number of distinct tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Card returns the bag cardinality (sum of multiplicities).
func (r *Relation) Card() int {
	n := 0
	for _, t := range r.Tuples {
		n += t.Mult
	}
	return n
}

// Add inserts a derivation of a tuple. Duplicate tuples merge: their
// multiplicities add, and in tracked mode their provenance nodes merge
// under a + node via the supplied builder (nil in plain mode).
func (r *Relation) Add(b *provgraph.Builder, t AnnTuple) {
	key := t.Tuple.Key()
	if pos, ok := r.index[key]; ok {
		prev := &r.Tuples[pos]
		prev.Mult += t.Mult
		if b != nil {
			pn, tn := prev.Node(), t.Node()
			if pn != tn {
				prev.Prov = b.MergeDerivations([]provgraph.NodeID{pn, tn})
				prev.lazy = nil
			}
		}
		return
	}
	r.index[key] = len(r.Tuples)
	r.Tuples = append(r.Tuples, t)
}

// Lookup returns the annotated tuple equal to t, if present.
func (r *Relation) Lookup(t *nested.Tuple) (AnnTuple, bool) {
	if pos, ok := r.index[t.Key()]; ok {
		return r.Tuples[pos], true
	}
	return AnnTuple{}, false
}

// ToBag expands the relation to a plain bag with duplicates.
func (r *Relation) ToBag() *nested.Bag {
	bag := nested.NewBag()
	for _, t := range r.Tuples {
		for i := 0; i < t.Mult; i++ {
			bag.Add(t.Tuple)
		}
	}
	return bag
}

// FromBag builds a relation from a plain bag (merging duplicates); the
// tuples carry no provenance.
func FromBag(schema *nested.Schema, bag *nested.Bag) *Relation {
	r := NewRelation(schema)
	for _, t := range bag.Tuples {
		r.Add(nil, AnnTuple{Tuple: t, Prov: provgraph.InvalidNode, Mult: 1})
	}
	return r
}

// Rebind returns a view of the relation with every annotation mapped
// through fn, sharing the tuple index with the receiver. It exists for the
// workflow runner's per-invocation input/state binding, which re-annotates
// large unchanged relations: sharing the index avoids recomputing every
// tuple key. The returned relation must be treated as read-only (Add would
// corrupt the shared index).
func (r *Relation) Rebind(fn func(AnnTuple) AnnTuple) *Relation {
	out := &Relation{Schema: r.Schema, index: r.index}
	out.Tuples = make([]AnnTuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = fn(t)
	}
	return out
}

// Clone returns a shallow copy of the relation (tuples shared).
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Schema)
	c.Tuples = append([]AnnTuple(nil), r.Tuples...)
	for k, v := range r.index {
		c.index[k] = v
	}
	return c
}

// Equal reports bag equality with another relation (schema ignored).
func (r *Relation) Equal(o *Relation) bool {
	if r.Card() != o.Card() || r.Len() != o.Len() {
		return false
	}
	for _, t := range r.Tuples {
		ot, ok := o.Lookup(t.Tuple)
		if !ok || ot.Mult != t.Mult {
			return false
		}
	}
	return true
}

// String renders the relation as an expanded bag.
func (r *Relation) String() string { return r.ToBag().String() }

// BagAnnotations carries the member annotations of nested bags: when a
// GROUP/COGROUP (or UDF) produces a bag nested inside a tuple, the bag's
// members keep their own provenance (Section 3.2: "tuples in the relations
// nested in t keep their original provenance"). The table is keyed by bag
// identity and consulted when a later FOREACH aggregates or flattens the
// bag. It must outlive a single program run — nested bags flow across
// module boundaries — so the workflow runner owns one per workflow run.
//
// A table may be layered over a parent: lookups fall through to the
// parent, writes stay local. The parallel workflow scheduler gives each
// concurrent invocation an Overlay over the run's shared table, so
// capture-time writes never race, and merges the layers back (remapping
// placeholder provenance ids) at its drain barrier.
type BagAnnotations struct {
	m      map[*nested.Bag][]AnnTuple
	parent *BagAnnotations
}

// NewBagAnnotations returns an empty root annotation table.
func NewBagAnnotations() *BagAnnotations {
	return &BagAnnotations{m: make(map[*nested.Bag][]AnnTuple)}
}

// Overlay returns a child table: reads fall through to ba, writes stay in
// the child until MergeInto folds them back.
func (ba *BagAnnotations) Overlay() *BagAnnotations {
	return &BagAnnotations{m: make(map[*nested.Bag][]AnnTuple), parent: ba}
}

// Annotate records the member annotations of a nested bag.
func (ba *BagAnnotations) Annotate(bag *nested.Bag, members []AnnTuple) {
	if ba != nil {
		ba.m[bag] = members
	}
}

// lookup resolves a bag through the layer chain.
func (ba *BagAnnotations) lookup(bag *nested.Bag) ([]AnnTuple, bool) {
	for cur := ba; cur != nil; cur = cur.parent {
		if m, ok := cur.m[bag]; ok {
			return m, true
		}
	}
	return nil, false
}

// Members returns the annotations of a nested bag's tuples. For bags with
// no recorded annotation (external data), every member falls back to the
// owner tuple's provenance with multiplicity 1.
func (ba *BagAnnotations) Members(bag *nested.Bag, owner AnnTuple) []AnnTuple {
	if ba != nil {
		if m, ok := ba.lookup(bag); ok {
			return m
		}
	}
	members := make([]AnnTuple, len(bag.Tuples))
	for i, t := range bag.Tuples {
		members[i] = AnnTuple{Tuple: t, Prov: owner.Node(), Mult: 1}
	}
	return members
}

// Len returns the number of locally annotated bags (this layer only).
func (ba *BagAnnotations) Len() int { return len(ba.m) }

// MergeInto folds this layer's entries into dst, translating provenance
// ids through remap (nil means identity). Entry sets of sibling overlays
// are disjoint (each invocation annotates only bags it created), so merge
// order across siblings does not matter.
func (ba *BagAnnotations) MergeInto(dst *BagAnnotations, remap func(provgraph.NodeID) provgraph.NodeID) {
	for bag, members := range ba.m {
		if remap != nil {
			RemapAnnTuples(members, remap)
		}
		dst.m[bag] = members
	}
}

// RemapAnnTuples rewrites the provenance annotations of ts in place
// through fn, covering both direct and memoized-lazy annotations. fn must
// be idempotent: lazy cells can be shared between tuple copies.
func RemapAnnTuples(ts []AnnTuple, fn func(provgraph.NodeID) provgraph.NodeID) {
	for i := range ts {
		t := &ts[i]
		if t.Prov != provgraph.InvalidNode {
			t.Prov = fn(t.Prov)
		}
		if t.lazy != nil && t.lazy.resolved != provgraph.InvalidNode {
			t.lazy.resolved = fn(t.lazy.resolved)
		}
	}
}

// RemapProv rewrites every tuple annotation of the relation through fn
// (see RemapAnnTuples). The parallel scheduler uses it to translate a
// drained invocation's placeholder ids in its output and persisted state
// relations.
func (r *Relation) RemapProv(fn func(provgraph.NodeID) provgraph.NodeID) {
	RemapAnnTuples(r.Tuples, fn)
}

// Env is the evaluation environment: named relations plus the shared
// nested-bag annotations.
type Env struct {
	Rels map[string]*Relation
	Bags *BagAnnotations
}

// NewEnv returns an empty environment with bag-annotation tracking.
func NewEnv() *Env {
	return &Env{Rels: make(map[string]*Relation), Bags: NewBagAnnotations()}
}

// Rel returns the named relation or an error.
func (e *Env) Rel(name string) (*Relation, error) {
	r, ok := e.Rels[name]
	if !ok {
		return nil, fmt.Errorf("eval: relation %q not bound", name)
	}
	return r, nil
}

// Set binds a relation name.
func (e *Env) Set(name string, r *Relation) { e.Rels[name] = r }
