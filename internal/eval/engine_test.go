package eval

import (
	"fmt"
	"testing"

	"lipstick/internal/nested"
	"lipstick/internal/pig"
	"lipstick/internal/provgraph"
)

func str() nested.Type { return nested.ScalarType(nested.KindString) }

// dealerEnvSchemas reproduces the module schemas of Example 2.1.
func dealerEnvSchemas() nested.RelationSchemas {
	return nested.RelationSchemas{
		"Requests": nested.NewSchema(
			nested.Field{Name: "UserId", Type: str()},
			nested.Field{Name: "BidId", Type: str()},
			nested.Field{Name: "Model", Type: str()},
		),
		"Cars": nested.NewSchema(
			nested.Field{Name: "CarId", Type: str()},
			nested.Field{Name: "Model", Type: str()},
		),
		"SoldCars": nested.NewSchema(
			nested.Field{Name: "CarId", Type: str()},
			nested.Field{Name: "BidId", Type: str()},
		),
	}
}

const dealerProgram = `
ReqModel = FOREACH Requests GENERATE Model;
Inventory = JOIN Cars BY Model, ReqModel BY Model;
SoldInventory = JOIN Inventory BY CarId, SoldCars BY CarId;
CarsByModel = GROUP Inventory BY Cars::Model;
SoldByModel = GROUP SoldInventory BY Cars::Model;
NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
NumSoldByModel = FOREACH SoldByModel GENERATE group AS Model, COUNT(SoldInventory) AS NumSold;
AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model, NumSoldByModel BY Model;
InventoryBids = FOREACH AllInfoByModel GENERATE FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel));
`

// calcBid computes a bid from (Requests, NumCarsByModel, NumSoldByModel)
// bags, mimicking the paper's black box: base price minus availability
// discount.
func calcBid() *pig.UDF {
	return &pig.UDF{
		Name: "CalcBid",
		OutSchema: nested.NewSchema(
			nested.Field{Name: "BidId", Type: str()},
			nested.Field{Name: "UserId", Type: str()},
			nested.Field{Name: "Model", Type: str()},
			nested.Field{Name: "Amount", Type: nested.ScalarType(nested.KindFloat)},
		),
		Fn: func(args []nested.Value) (*nested.Bag, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("CalcBid wants 3 args")
			}
			reqs := args[0].AsBag()
			out := nested.NewBag()
			for _, req := range reqs.Tuples {
				avail := int64(0)
				if args[1].Kind() == nested.KindBag && len(args[1].AsBag().Tuples) > 0 {
					avail = args[1].AsBag().Tuples[0].Fields[1].AsInt()
				}
				amount := 25000.0 - 2500.0*float64(avail)
				out.Add(nested.NewTuple(req.Fields[1], req.Fields[0], req.Fields[2], nested.Float(amount)))
			}
			return out, nil
		},
	}
}

// buildDealerInputs loads the instance of Example 2.3.
func buildDealerInputs(env *Env, schemas nested.RelationSchemas) {
	cars := NewRelation(schemas["Cars"])
	for i, row := range [][2]string{{"C1", "Accord"}, {"C2", "Civic"}, {"C3", "Civic"}} {
		cars.Add(nil, AnnTuple{
			Tuple: nested.NewTuple(nested.Str(row[0]), nested.Str(row[1])),
			Prov:  provgraph.InvalidNode, Mult: 1,
		})
		_ = i
	}
	reqs := NewRelation(schemas["Requests"])
	reqs.Add(nil, AnnTuple{
		Tuple: nested.NewTuple(nested.Str("P1"), nested.Str("B1"), nested.Str("Civic")),
		Prov:  provgraph.InvalidNode, Mult: 1,
	})
	env.Set("Cars", cars)
	env.Set("Requests", reqs)
	env.Set("SoldCars", NewRelation(schemas["SoldCars"]))
}

// trackDealerInputs is buildDealerInputs with provenance tokens.
func trackDealerInputs(env *Env, schemas nested.RelationSchemas, b *provgraph.Builder) map[string]provgraph.NodeID {
	nodes := map[string]provgraph.NodeID{}
	cars := NewRelation(schemas["Cars"])
	for _, row := range [][2]string{{"C1", "Accord"}, {"C2", "Civic"}, {"C3", "Civic"}} {
		n := b.BaseTuple(row[0])
		nodes[row[0]] = n
		cars.Add(b, AnnTuple{
			Tuple: nested.NewTuple(nested.Str(row[0]), nested.Str(row[1])),
			Prov:  n, Mult: 1,
		})
	}
	reqs := NewRelation(schemas["Requests"])
	rq := b.WorkflowInput("I1")
	nodes["I1"] = rq
	reqs.Add(b, AnnTuple{
		Tuple: nested.NewTuple(nested.Str("P1"), nested.Str("B1"), nested.Str("Civic")),
		Prov:  rq, Mult: 1,
	})
	env.Set("Cars", cars)
	env.Set("Requests", reqs)
	env.Set("SoldCars", NewRelation(schemas["SoldCars"]))
	return nodes
}

func compileDealer(t *testing.T) *pig.Plan {
	t.Helper()
	reg := pig.NewRegistry()
	reg.MustRegister(calcBid())
	plan, err := pig.CompileSource(dealerProgram, dealerEnvSchemas(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestDealerExample23 replays Example 2.3 and checks every intermediate
// table the paper prints.
func TestDealerExample23(t *testing.T) {
	plan := compileDealer(t)
	env := NewEnv()
	buildDealerInputs(env, plan.Schemas)
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}

	check := func(name, want string) {
		t.Helper()
		r, err := env.Rel(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := r.String(); got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
	check("ReqModel", "{<Civic>}")
	check("Inventory", "{<C2,Civic,Civic>,<C3,Civic,Civic>}")
	check("SoldInventory", "{}")
	check("NumCarsByModel", "{<Civic,2>}")
	check("NumSoldByModel", "{}")
	// CarsByModel: one group with the two Civics.
	cbm, _ := env.Rel("CarsByModel")
	if cbm.Len() != 1 {
		t.Fatalf("CarsByModel = %v", cbm)
	}
	grp := cbm.Tuples[0].Tuple
	if grp.Fields[0].AsString() != "Civic" || grp.Fields[1].AsBag().Len() != 2 {
		t.Errorf("CarsByModel group = %v", grp)
	}
	// AllInfoByModel: Civic with requests bag, numcars bag, empty numsold.
	aib, _ := env.Rel("AllInfoByModel")
	if aib.Len() != 1 {
		t.Fatalf("AllInfoByModel = %v", aib)
	}
	at := aib.Tuples[0].Tuple
	if at.Fields[1].AsBag().Len() != 1 || at.Fields[2].AsBag().Len() != 1 || at.Fields[3].AsBag().Len() != 0 {
		t.Errorf("AllInfoByModel nested bags wrong: %v", at)
	}
	// InventoryBids: one bid; amount 25000 - 2500*2 = 20000 ("$20K").
	check("InventoryBids", "{<B1,P1,Civic,20000>}")
}

// TestDealerTrackedMatchesPlain: tracked evaluation computes the same bags
// as plain evaluation.
func TestDealerTrackedMatchesPlain(t *testing.T) {
	plan := compileDealer(t)

	plainEnv := NewEnv()
	buildDealerInputs(plainEnv, plan.Schemas)
	if err := New(nil).Run(plan, plainEnv); err != nil {
		t.Fatal(err)
	}

	b := provgraph.NewBuilder()
	trackedEnv := NewEnv()
	trackDealerInputs(trackedEnv, plan.Schemas, b)
	if err := New(b).Run(plan, trackedEnv); err != nil {
		t.Fatal(err)
	}

	for name := range plainEnv.Rels {
		pr := plainEnv.Rels[name]
		tr := trackedEnv.Rels[name]
		if tr == nil {
			t.Errorf("%s missing in tracked env", name)
			continue
		}
		if !pr.Equal(tr) {
			t.Errorf("%s differs: plain %s vs tracked %s", name, pr, tr)
		}
	}
	if !b.G.IsAcyclic() {
		t.Error("tracked graph must be acyclic")
	}
}

// TestDealerDeletionWhatIf: on the tracked graph, the bid survives deleting
// car C2 (Example 4.5) but dies with the request.
func TestDealerDeletionWhatIf(t *testing.T) {
	plan := compileDealer(t)
	b := provgraph.NewBuilder()
	env := NewEnv()
	nodes := trackDealerInputs(env, plan.Schemas, b)
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	bids, _ := env.Rel("InventoryBids")
	if bids.Len() != 1 {
		t.Fatalf("bids = %v", bids)
	}
	bidNode := bids.Tuples[0].Prov

	if b.G.DependsOn(bidNode, nodes["C2"]) {
		t.Error("bid should survive deletion of C2")
	}
	if !b.G.DependsOn(bidNode, nodes["I1"]) {
		t.Error("bid should depend on the request")
	}
	// COUNT recomputation after deleting C2 (Example 4.3).
	g := b.G.Clone()
	g.Delete(nodes["C2"])
	recs := g.RecomputeAggregates()
	found := false
	for _, rec := range recs {
		if rec.Op == "COUNT" && rec.Before.Equal(nested.Int(2)) && rec.After.Equal(nested.Int(1)) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected COUNT 2->1 recomputation, got %v", recs)
	}
}

// TestProjectionMergesDuplicates: projecting two Civics onto Model yields
// one tuple with multiplicity 2 and a single + node over both cars.
func TestProjectionMergesDuplicates(t *testing.T) {
	schemas := dealerEnvSchemas()
	plan, err := pig.CompileSource("Models = FOREACH Cars GENERATE Model;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := provgraph.NewBuilder()
	env := NewEnv()
	trackDealerInputs(env, schemas, b)
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	models, _ := env.Rel("Models")
	if models.Len() != 2 || models.Card() != 3 {
		t.Fatalf("Models = %v (len %d card %d)", models, models.Len(), models.Card())
	}
	civic, ok := models.Lookup(nested.NewTuple(nested.Str("Civic")))
	if !ok || civic.Mult != 2 {
		t.Fatalf("civic mult = %d", civic.Mult)
	}
	n := b.G.Node(civic.Prov)
	if n.Op != provgraph.OpPlus {
		t.Errorf("civic prov should be a + node, got %s", n.Op)
	}
	if len(b.G.In(civic.Prov)) != 2 {
		t.Errorf("civic + node should have 2 sources, has %d", len(b.G.In(civic.Prov)))
	}
}

func intRel(schema *nested.Schema, b *provgraph.Builder, vals ...int64) *Relation {
	r := NewRelation(schema)
	for i, v := range vals {
		prov := provgraph.InvalidNode
		if b != nil {
			prov = b.BaseTuple(fmt.Sprintf("t%d", i))
		}
		r.Add(b, AnnTuple{Tuple: nested.NewTuple(nested.Int(v)), Prov: prov, Mult: 1})
	}
	return r
}

func intSchema() *nested.Schema {
	return nested.NewSchema(nested.Field{Name: "x", Type: nested.ScalarType(nested.KindInt)})
}

func TestAggregatesOverGroups(t *testing.T) {
	schemas := nested.RelationSchemas{"V": intSchema()}
	src := `G = GROUP V BY (x % 2);
S = FOREACH G GENERATE group AS parity, COUNT(V) AS n, SUM(V) AS s, MIN(V) AS lo, MAX(V) AS hi, AVG(V) AS mean;`
	plan, err := pig.CompileSource(src, schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Set("V", intRel(schemas["V"], nil, 1, 2, 3, 4, 5))
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	s, _ := env.Rel("S")
	if s.Len() != 2 {
		t.Fatalf("S = %v", s)
	}
	odd, ok := s.Lookup(nested.NewTuple(nested.Int(1), nested.Int(3), nested.Int(9), nested.Int(1), nested.Int(5), nested.Float(3)))
	if !ok || odd.Mult != 1 {
		t.Errorf("odd group aggregate wrong: %v", s)
	}
	even, ok := s.Lookup(nested.NewTuple(nested.Int(0), nested.Int(2), nested.Int(6), nested.Int(2), nested.Int(4), nested.Float(3)))
	if !ok || even.Mult != 1 {
		t.Errorf("even group aggregate wrong: %v", s)
	}
}

func TestAggregateRespectsMultiplicity(t *testing.T) {
	// Two physical copies of <2> must make COUNT=3, SUM=4 for the group
	// containing them (values 2,2) plus <0> in even group... use one group.
	schemas := nested.RelationSchemas{"V": intSchema()}
	plan, err := pig.CompileSource("G = GROUP V BY 1; S = FOREACH G GENERATE COUNT(V) AS n, SUM(V) AS s;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	r := NewRelation(schemas["V"])
	r.Add(nil, AnnTuple{Tuple: nested.NewTuple(nested.Int(2)), Prov: provgraph.InvalidNode, Mult: 2})
	r.Add(nil, AnnTuple{Tuple: nested.NewTuple(nested.Int(5)), Prov: provgraph.InvalidNode, Mult: 1})
	env.Set("V", r)
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	s, _ := env.Rel("S")
	if _, ok := s.Lookup(nested.NewTuple(nested.Int(3), nested.Int(9))); !ok {
		t.Errorf("aggregates ignore multiplicity: %v", s)
	}
}

func TestEmptyGroupAggregates(t *testing.T) {
	schemas := nested.RelationSchemas{"V": intSchema()}
	plan, err := pig.CompileSource("G = GROUP V BY x; S = FOREACH G GENERATE COUNT(V) AS n, MIN(V) AS lo;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Set("V", intRel(schemas["V"], nil))
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	s, _ := env.Rel("S")
	if s.Len() != 0 {
		t.Errorf("group of empty relation should be empty, got %v", s)
	}
}

func TestUnionMergesAnnotations(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema(), "B": intSchema()}
	plan, err := pig.CompileSource("U = UNION A, B;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := provgraph.NewBuilder()
	env := NewEnv()
	env.Set("A", intRel(schemas["A"], b, 1, 2))
	env.Set("B", intRel(schemas["B"], b, 2, 3))
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	u, _ := env.Rel("U")
	if u.Len() != 3 || u.Card() != 4 {
		t.Fatalf("U = %v", u)
	}
	two, _ := u.Lookup(nested.NewTuple(nested.Int(2)))
	if two.Mult != 2 {
		t.Errorf("union mult = %d, want 2", two.Mult)
	}
	if b.G.Node(two.Prov).Op != provgraph.OpPlus {
		t.Error("shared tuple should be +-annotated")
	}
}

func TestDistinctDeltaNodes(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("D = DISTINCT A;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := provgraph.NewBuilder()
	env := NewEnv()
	r := NewRelation(schemas["A"])
	n0 := b.BaseTuple("t0")
	r.Add(b, AnnTuple{Tuple: nested.NewTuple(nested.Int(7)), Prov: n0, Mult: 3})
	env.Set("A", r)
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	d, _ := env.Rel("D")
	if d.Len() != 1 || d.Card() != 1 {
		t.Fatalf("D = %v (card %d)", d, d.Card())
	}
	if b.G.Node(d.Tuples[0].Prov).Op != provgraph.OpDelta {
		t.Error("DISTINCT should δ-annotate")
	}
}

func TestOrderAndLimit(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("O = ORDER A BY x DESC; L = LIMIT O 2;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Set("A", intRel(schemas["A"], nil, 3, 1, 4, 1, 5))
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	o, _ := env.Rel("O")
	if o.Tuples[0].Tuple.Fields[0].AsInt() != 5 || o.Tuples[len(o.Tuples)-1].Tuple.Fields[0].AsInt() != 1 {
		t.Errorf("order wrong: %v", o.Tuples)
	}
	l, _ := env.Rel("L")
	if l.Card() != 2 {
		t.Errorf("limit card = %d", l.Card())
	}
	if _, ok := l.Lookup(nested.NewTuple(nested.Int(5))); !ok {
		t.Error("limit should keep the top tuples")
	}
}

func TestLimitSplitsMultiplicity(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("L = LIMIT A 2;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	r := NewRelation(schemas["A"])
	r.Add(nil, AnnTuple{Tuple: nested.NewTuple(nested.Int(9)), Prov: provgraph.InvalidNode, Mult: 5})
	env.Set("A", r)
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	l, _ := env.Rel("L")
	if l.Card() != 2 {
		t.Errorf("limit card = %d, want 2", l.Card())
	}
}

func TestFilterKeepsAnnotation(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("F = FILTER A BY x > 2;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := provgraph.NewBuilder()
	env := NewEnv()
	env.Set("A", intRel(schemas["A"], b, 1, 5))
	before := b.G.NumNodes()
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	f, _ := env.Rel("F")
	if f.Len() != 1 {
		t.Fatalf("F = %v", f)
	}
	if b.G.NumNodes() != before {
		t.Error("FILTER must not create provenance nodes")
	}
	orig, _ := env.Rels["A"].Lookup(nested.NewTuple(nested.Int(5)))
	if f.Tuples[0].Prov != orig.Prov {
		t.Error("FILTER must keep the original annotation node")
	}
}

func TestJoinMultiplicities(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema(), "B": intSchema()}
	plan, err := pig.CompileSource("J = JOIN A BY x, B BY x;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	a := NewRelation(schemas["A"])
	a.Add(nil, AnnTuple{Tuple: nested.NewTuple(nested.Int(1)), Prov: provgraph.InvalidNode, Mult: 2})
	bRel := NewRelation(schemas["B"])
	bRel.Add(nil, AnnTuple{Tuple: nested.NewTuple(nested.Int(1)), Prov: provgraph.InvalidNode, Mult: 3})
	env.Set("A", a)
	env.Set("B", bRel)
	if err := New(nil).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	j, _ := env.Rel("J")
	if j.Card() != 6 {
		t.Errorf("join card = %d, want 6", j.Card())
	}
}

func TestFlattenBagCrossesOuter(t *testing.T) {
	schemas := nested.RelationSchemas{"V": intSchema()}
	src := `G = GROUP V BY (x % 2); F = FOREACH G GENERATE group, FLATTEN(V);`
	plan, err := pig.CompileSource(src, schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := provgraph.NewBuilder()
	env := NewEnv()
	env.Set("V", intRel(schemas["V"], b, 1, 2, 3))
	if err := New(b).Run(plan, env); err != nil {
		t.Fatal(err)
	}
	f, _ := env.Rel("F")
	if f.Card() != 3 {
		t.Fatalf("F = %v", f)
	}
	odd1, ok := f.Lookup(nested.NewTuple(nested.Int(1), nested.Int(1)))
	if !ok {
		t.Fatalf("missing flattened tuple: %v", f)
	}
	// Provenance: · of the group tuple and the member.
	if b.G.Node(odd1.Prov).Op != provgraph.OpTimes {
		t.Errorf("flatten prov should be ·, got %s", b.G.Node(odd1.Prov).Op)
	}
	if len(b.G.In(odd1.Prov)) != 2 {
		t.Errorf("flatten · should have 2 sources")
	}
}

func TestErrorOnUnboundRelation(t *testing.T) {
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("F = FILTER A BY x > 2;", schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	if err := New(nil).Run(plan, env); err == nil {
		t.Error("running against empty env should fail")
	}
}

func TestUDFErrorPropagates(t *testing.T) {
	reg := pig.NewRegistry()
	reg.MustRegister(&pig.UDF{
		Name:      "Boom",
		OutSchema: intSchema(),
		Fn: func([]nested.Value) (*nested.Bag, error) {
			return nil, fmt.Errorf("kaboom")
		},
	})
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("B = FOREACH A GENERATE FLATTEN(Boom(x));", schemas, reg)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Set("A", intRel(schemas["A"], nil, 1))
	if err := New(nil).Run(plan, env); err == nil {
		t.Error("UDF error should propagate")
	}
}

func TestUDFOutputValidated(t *testing.T) {
	reg := pig.NewRegistry()
	reg.MustRegister(&pig.UDF{
		Name:      "BadSchema",
		OutSchema: intSchema(),
		Fn: func([]nested.Value) (*nested.Bag, error) {
			return nested.NewBag(nested.NewTuple(nested.Str("oops"), nested.Str("x"))), nil
		},
	})
	schemas := nested.RelationSchemas{"A": intSchema()}
	plan, err := pig.CompileSource("B = FOREACH A GENERATE FLATTEN(BadSchema(x));", schemas, reg)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Set("A", intRel(schemas["A"], nil, 1))
	if err := New(nil).Run(plan, env); err == nil {
		t.Error("UDF schema violation should fail")
	}
}
