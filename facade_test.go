package lipstick_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"lipstick"
)

// buildFacadeWorkflow assembles a small pipeline through the public API.
func buildFacadeWorkflow(t *testing.T) *lipstick.Workflow {
	t.Helper()
	str := lipstick.ScalarType(lipstick.KindString)
	flt := lipstick.ScalarType(lipstick.KindFloat)
	reqSchema := lipstick.NewSchema(lipstick.Field{Name: "Sku", Type: str})
	itemSchema := lipstick.NewSchema(
		lipstick.Field{Name: "Sku", Type: str},
		lipstick.Field{Name: "Price", Type: flt},
	)
	w := lipstick.NewWorkflow()
	src := &lipstick.Module{Name: "M_src", Out: lipstick.RelationSchemas{"Req": reqSchema}}
	match := &lipstick.Module{
		Name:  "M_match",
		In:    lipstick.RelationSchemas{"Req": reqSchema},
		State: lipstick.RelationSchemas{"Items": itemSchema},
		Out:   lipstick.RelationSchemas{"Matches": itemSchema},
		Program: `
MJ = JOIN Items BY Sku, Req BY Sku;
Matches = FOREACH MJ GENERATE Items::Sku AS Sku, Items::Price AS Price;
`,
	}
	if err := w.AddNode("src", src); err != nil {
		t.Fatal(err)
	}
	if err := w.AddNode("match", match); err != nil {
		t.Fatal(err)
	}
	if err := w.AddEdge("src", "match", "Req"); err != nil {
		t.Fatal(err)
	}
	w.In = []string{"src"}
	w.Out = []string{"match"}
	return w
}

// TestFacadeEndToEnd drives track -> save -> load -> query purely through
// the public API.
func TestFacadeEndToEnd(t *testing.T) {
	w := buildFacadeWorkflow(t)
	tr, err := lipstick.NewTracker(w, lipstick.Fine)
	if err != nil {
		t.Fatal(err)
	}
	items := lipstick.NewBag(
		lipstick.NewTuple(lipstick.Str("A"), lipstick.Float(10)),
		lipstick.NewTuple(lipstick.Str("B"), lipstick.Float(20)),
	)
	if err := tr.Runner().SetState("M_match", "Items", items, "item"); err != nil {
		t.Fatal(err)
	}
	exec, err := tr.Execute(lipstick.Inputs{
		"src": {"Req": lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A")))},
	})
	if err != nil {
		t.Fatal(err)
	}
	matches, ok := exec.Output("match", "Matches")
	if !ok || matches.Len() != 1 {
		t.Fatalf("Matches = %v", matches)
	}

	path := filepath.Join(t.TempDir(), "run.lpsk")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	qp, err := lipstick.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	match := lipstick.NewTuple(lipstick.Str("A"), lipstick.Float(10))
	node, ok := qp.FindOutputTuple("match", "Matches", match)
	if !ok {
		t.Fatal("match tuple not found")
	}
	itemA := qp.FindNodes(lipstick.NodeFilter{Label: "item0"})
	if len(itemA) != 1 {
		t.Fatalf("item0 = %v", itemA)
	}
	if !qp.DependsOn(node, itemA[0]) {
		t.Error("the A match must depend on item A (its only derivation)")
	}
	if err := qp.ZoomOut("M_match"); err != nil {
		t.Fatal(err)
	}
	if err := qp.ZoomIn(); err != nil {
		t.Fatal(err)
	}
	res := qp.WhatIfDelete(itemA[0])
	if !res.Deleted(node) {
		t.Error("deleting item A must delete the match")
	}
	l := qp.Lineage(node)
	if len(l.Inputs) != 1 || len(l.StateTuples) != 1 {
		t.Errorf("lineage = %+v", l)
	}
	if qp.Polynomial(node).IsZero() {
		t.Error("polynomial must be nonzero")
	}
}

// TestFacadeGranularities runs the same workflow in all three modes.
func TestFacadeGranularities(t *testing.T) {
	for _, gran := range []lipstick.Granularity{lipstick.Plain, lipstick.Coarse, lipstick.Fine} {
		w := buildFacadeWorkflow(t)
		tr, err := lipstick.NewTracker(w, gran)
		if err != nil {
			t.Fatalf("%v: %v", gran, err)
		}
		if err := tr.Runner().SetState("M_match", "Items",
			lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A"), lipstick.Float(1))), "i"); err != nil {
			t.Fatal(err)
		}
		exec, err := tr.Execute(lipstick.Inputs{
			"src": {"Req": lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A")))},
		})
		if err != nil {
			t.Fatalf("%v: %v", gran, err)
		}
		out, _ := exec.Output("match", "Matches")
		if out.Len() != 1 {
			t.Errorf("%v: output = %v", gran, out)
		}
	}
}

// TestFacadeEagerStateNodes: the eager option materializes state nodes for
// untouched tuples too, growing the graph relative to the lazy default.
func TestFacadeEagerStateNodes(t *testing.T) {
	sizes := map[string]int{}
	for _, mode := range []string{"lazy", "eager"} {
		w := buildFacadeWorkflow(t)
		var tr *lipstick.Tracker
		var err error
		if mode == "eager" {
			tr, err = lipstick.NewTracker(w, lipstick.Fine, lipstick.WithEagerStateNodes())
		} else {
			tr, err = lipstick.NewTracker(w, lipstick.Fine)
		}
		if err != nil {
			t.Fatal(err)
		}
		items := lipstick.NewBag(
			lipstick.NewTuple(lipstick.Str("A"), lipstick.Float(1)),
			lipstick.NewTuple(lipstick.Str("B"), lipstick.Float(2)),
			lipstick.NewTuple(lipstick.Str("C"), lipstick.Float(3)),
		)
		if err := tr.Runner().SetState("M_match", "Items", items, "i"); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Execute(lipstick.Inputs{
			"src": {"Req": lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A")))},
		}); err != nil {
			t.Fatal(err)
		}
		sizes[mode] = tr.Runner().Graph().NumNodes()
	}
	// Only item A joins; lazy creates one s-node, eager creates three.
	if sizes["eager"] != sizes["lazy"]+2 {
		t.Errorf("eager = %d nodes, lazy = %d; want exactly 2 more (B and C)", sizes["eager"], sizes["lazy"])
	}
}

// TestFacadeOpenAndQueryService covers the cached query path: Open
// returns one shared processor per snapshot version, and the query
// service answers over HTTP from the same cache.
func TestFacadeOpenAndQueryService(t *testing.T) {
	w := buildFacadeWorkflow(t)
	tr, err := lipstick.NewTracker(w, lipstick.Fine)
	if err != nil {
		t.Fatal(err)
	}
	items := lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A"), lipstick.Float(10)))
	if err := tr.Runner().SetState("M_match", "Items", items, "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Execute(lipstick.Inputs{
		"src": {"Req": lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A")))},
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.lpsk")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}

	qp1, err := lipstick.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	qp2, err := lipstick.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if qp1 != qp2 {
		t.Error("Open did not return the cached processor")
	}
	if got := qp1.FindNodes(lipstick.NodeFilter{Label: "item0"}); len(got) != 1 {
		t.Errorf("item0 via cached processor = %v", got)
	}

	svc := lipstick.NewQueryService(lipstick.NewSnapshotManager(2))
	srv := httptest.NewServer(svc.Handler(path))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("info status = %d", resp.StatusCode)
	}
	var info struct {
		Nodes int `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Nodes == 0 {
		t.Error("served info reported an empty graph")
	}
}

// TestFacadeRegistryAndSession exercises the multi-snapshot registry and
// a copy-on-write mutation session through the public API.
func TestFacadeRegistryAndSession(t *testing.T) {
	w := buildFacadeWorkflow(t)
	tr, err := lipstick.NewTracker(w, lipstick.Fine)
	if err != nil {
		t.Fatal(err)
	}
	items := lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A"), lipstick.Float(10)))
	if err := tr.Runner().SetState("M_match", "Items", items, "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Execute(lipstick.Inputs{
		"src": {"Req": lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A")))},
	}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := tr.Save(filepath.Join(dir, "run.lpsk")); err != nil {
		t.Fatal(err)
	}

	reg := lipstick.NewRegistry(nil, lipstick.WithSessionLimit(16))
	names, err := reg.RegisterDir(dir)
	if err != nil || len(names) != 1 || names[0] != "run" {
		t.Fatalf("RegisterDir = %v, %v", names, err)
	}
	base, err := reg.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	baseNodes := base.Graph().NumNodes()

	sess, err := reg.CreateSession("run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ZoomOut("M_match"); err != nil {
		t.Fatal(err)
	}
	var zoomFilter lipstick.NodeFilter
	zoomFilter.Types = append(zoomFilter.Types, lipstick.TypeZoom)
	zoomed := sess.FindNodes(zoomFilter)
	if len(zoomed) != 1 {
		t.Fatalf("zoom nodes in session view = %v", zoomed)
	}
	res, _ := sess.ApplyDelete(zoomed[0])
	if res.Size() == 0 {
		t.Fatal("session delete removed nothing")
	}
	if sess.Stats().Nodes >= baseNodes {
		t.Errorf("session view did not shrink: %d vs base %d", sess.Stats().Nodes, baseNodes)
	}
	if base.Graph().NumNodes() != baseNodes {
		t.Error("session mutation leaked into the shared base graph")
	}

	var nf *lipstick.NotFoundError
	if _, err := reg.Session("sess-404"); err == nil {
		t.Error("unknown session should fail")
	} else if !errorsAs(err, &nf) || nf.Kind != "session" {
		t.Errorf("unknown session error = %v", err)
	}

	svc := lipstick.NewRegistryService(reg)
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snaps struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatal(err)
	}
	if snaps.Count != 1 {
		t.Errorf("snapshots = %+v", snaps)
	}
}

func errorsAs(err error, target any) bool { return errors.As(err, target) }

// TestFacadeStreaming drives the streaming surface purely through the
// public API: capture a run as events, replay it, serve it live over
// HTTP via an IngestClient, and fork a session.
func TestFacadeStreaming(t *testing.T) {
	// Capture a tracked run into an EventLog.
	w := buildFacadeWorkflow(t)
	log := lipstick.NewEventLog()
	tr, err := lipstick.NewTracker(w, lipstick.Fine, lipstick.WithEventSink(log.Record))
	if err != nil {
		t.Fatal(err)
	}
	items := lipstick.NewBag(
		lipstick.NewTuple(lipstick.Str("A"), lipstick.Float(10)),
		lipstick.NewTuple(lipstick.Str("B"), lipstick.Float(20)),
	)
	if err := tr.Runner().SetState("M_match", "Items", items, "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Execute(lipstick.Inputs{
		"src": {"Req": lipstick.NewBag(lipstick.NewTuple(lipstick.Str("A")))},
	}); err != nil {
		t.Fatal(err)
	}
	events := log.Drain()
	if len(events) == 0 {
		t.Fatal("no events captured")
	}

	// Replay reconstructs the run's graph.
	replayed, err := lipstick.Replay(events)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Runner().Graph().StructurallyEqual(replayed) {
		t.Fatal("replay differs from the tracked graph")
	}

	// A LiveGraph ingests the stream batch by batch.
	lg := lipstick.NewLiveGraph("facade")
	if _, err := lg.Append(1, events); err != nil {
		t.Fatal(err)
	}
	if lg.Seq() != uint64(len(events)) {
		t.Fatalf("live seq %d, want %d", lg.Seq(), len(events))
	}

	// Stream to a server via IngestClient and query the live graph.
	svc := lipstick.NewQueryService(nil)
	srv := httptest.NewServer(svc.Handler(""))
	defer srv.Close()
	client := lipstick.NewIngestClient(srv.URL, "wire", 16)
	for _, ev := range events {
		client.Record(ev)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/snapshots/wire/find?type=m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var find struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&find); err != nil {
		t.Fatal(err)
	}
	if find.Count == 0 {
		t.Fatal("live find over the facade pipeline returned nothing")
	}

	// Session forking through the registry facade.
	path := filepath.Join(t.TempDir(), "run.lpsk")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	reg := lipstick.NewRegistry(nil)
	if err := reg.Register("run", path); err != nil {
		t.Fatal(err)
	}
	sess, err := reg.CreateSession("run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ZoomOut("M_match"); err != nil {
		t.Fatal(err)
	}
	fork, err := reg.ForkSession(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if fork.Changes() != sess.Changes() || fork.ID() == sess.ID() {
		t.Fatalf("fork state: changes %d vs %d", fork.Changes(), sess.Changes())
	}
}
