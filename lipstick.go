// Package lipstick is the public API of the Lipstick workflow-provenance
// library, a from-scratch Go implementation of "Putting Lipstick on Pig:
// Enabling Database-style Workflow Provenance" (Amsterdamer, Davidson,
// Deutch, Milo, Stoyanovich, Tannen; VLDB 2011).
//
// Lipstick marries database-style and workflow-style provenance: workflow
// modules expose their functionality as Pig Latin queries over nested
// relations, and executions are tracked into a provenance graph that
// records fine-grained derivations (+, ·, δ, ⊗, aggregates, black boxes)
// alongside workflow structure (module invocations, module inputs and
// outputs, module state, workflow inputs). The graph supports ZoomIn and
// ZoomOut between granularities, deletion propagation for what-if
// analysis, and subgraph/dependency queries.
//
// A minimal session:
//
//	w := lipstick.NewWorkflow()                      // build a DAG of modules
//	... w.AddNode / w.AddEdge / w.In / w.Out ...
//	tr, err := lipstick.NewTracker(w, lipstick.Fine) // validate + prepare tracking
//	tr.Runner().SetState("M_dealer", "Cars", bag, "car")
//	exec, err := tr.Execute(lipstick.Inputs{"req": {"Requests": requests}})
//	err = tr.Save("run.lpsk")                        // persist provenance
//
//	qp, err := lipstick.Load("run.lpsk")             // query processor
//	qp.ZoomOut("M_dealer")
//	res := qp.WhatIfDelete(node)                     // deletion propagation
//	ok := qp.DependsOn(bid, car)                     // dependency query
//
// Execution can be parallelized: NewTracker (and workflow.NewRunner)
// accept WithParallelism(n), which dispatches independent module
// invocations of each execution to a bounded worker pool (n <= 0 selects
// GOMAXPROCS). Provenance capture stays deterministic — concurrent
// invocations record into local buffers that are drained in sequential
// invocation order, so the resulting graph is identical (id-for-id) to a
// sequential run's.
//
// Queries are index-backed and servable: snapshots persist postings lists
// (node type, op, label, module) next to the graph, so FindNodes
// intersects postings instead of scanning, and Open answers repeated
// queries against one snapshot from a process-wide cache
// (SnapshotManager). NewQueryService exposes the same handler layer the
// `lipstick` CLI uses; its Handler method serves every query over HTTP
// (`lipstick serve -addr :8080 run.lpsk`).
//
// Serving is multi-tenant: a Registry names many snapshots (explicit
// registration or a directory scan — `lipstick serve -dir snapshots/`)
// and opens mutable Sessions over them. A session applies zoom and
// deletion-propagation transformations to a copy-on-write overlay of the
// shared base graph, so creating one never deep-copies the graph, its
// state costs O(changes), sessions expire by TTL/LRU, and concurrent
// read queries against the base snapshot stay untouched. Session queries
// answer exactly as a Clone-then-mutate baseline would. Sessions fork:
// ForkSession clones a session's delta sets (never the base) into an
// independent what-if branch.
//
// Capture streams: WithEventSink observes every provenance-graph mutation
// of a run as a typed Event, in deterministic order (parallel runs
// included). Replay reconstructs a graph event-for-event from the stream;
// a LiveGraph applies events behind a single writer while serving every
// read query concurrently, with incrementally maintained postings so live
// selection stays indexed; and an IngestClient ships batches to a running
// `lipstick serve` (`POST /v1/ingest/{name}`), which answers all read
// endpoints against the stream mid-workflow. Live graphs can be durable:
// a segmented write-ahead log with periodic LPSK v2 checkpoints makes
// crash recovery checkpoint-load + tail-replay, idempotent by sequence
// number.
//
// The facade re-exports the stable surface of the internal packages; the
// full functionality (Pig Latin compiler, evaluation engine, provenance
// semirings, NRC translation, OPM export, benchmark workloads) lives under
// internal/ and is exercised by the examples and the benchmark harness.
package lipstick

import (
	"lipstick/internal/core"
	"lipstick/internal/nested"
	"lipstick/internal/pig"
	"lipstick/internal/provgraph"
	"lipstick/internal/serve"
	"lipstick/internal/store"
	"lipstick/internal/workflow"
)

// Data model.
type (
	// Value is a dynamically typed nested value (scalar, tuple, or bag).
	Value = nested.Value
	// Tuple is an ordered sequence of values.
	Tuple = nested.Tuple
	// Bag is an unordered multiset of tuples — the Pig Latin relation type.
	Bag = nested.Bag
	// Schema describes the fields of a relation's tuples.
	Schema = nested.Schema
	// Field is a named, typed column.
	Field = nested.Field
	// Type is a field type (scalar kind or nested tuple/bag).
	Type = nested.Type
	// RelationSchemas maps relation names to schemas.
	RelationSchemas = nested.RelationSchemas
)

// Value constructors.
var (
	// Null returns the null value.
	Null = nested.Null
	// Bool builds a boolean value.
	Bool = nested.Bool
	// Int builds an integer value.
	Int = nested.Int
	// Float builds a floating point value.
	Float = nested.Float
	// Str builds a string value.
	Str = nested.Str
	// TupleVal wraps a tuple as a value.
	TupleVal = nested.TupleVal
	// BagVal wraps a bag as a value.
	BagVal = nested.BagVal
	// NewTuple builds a tuple from values.
	NewTuple = nested.NewTuple
	// NewBag builds a bag from tuples.
	NewBag = nested.NewBag
	// NewSchema builds a schema from fields.
	NewSchema = nested.NewSchema
	// ScalarType builds a scalar field type.
	ScalarType = nested.ScalarType
	// TupleType builds a nested-tuple field type.
	TupleType = nested.TupleType
	// BagType builds a nested-bag field type.
	BagType = nested.BagType
)

// Scalar kinds.
const (
	KindNull   = nested.KindNull
	KindBool   = nested.KindBool
	KindInt    = nested.KindInt
	KindFloat  = nested.KindFloat
	KindString = nested.KindString
	KindTuple  = nested.KindTuple
	KindBag    = nested.KindBag
)

// Workflow model (Definitions 2.1-2.3 of the paper).
type (
	// Module is a workflow module: Pig Latin queries over input, state,
	// and output relational schemas.
	Module = workflow.Module
	// Workflow is a connected DAG of module nodes.
	Workflow = workflow.Workflow
	// Inputs supplies one execution's workflow inputs.
	Inputs = workflow.Inputs
	// Execution is the result of one workflow execution.
	Execution = workflow.Execution
	// Granularity selects plain, coarse-grained, or fine-grained tracking.
	Granularity = workflow.Granularity
	// UDF is a user-defined (black box) function callable from Pig Latin.
	UDF = pig.UDF
	// UDFRegistry resolves UDF names for a module's programs. (Registry
	// names the snapshot/session registry of the serving layer.)
	UDFRegistry = pig.Registry
)

// Tracking granularities.
const (
	// Plain records no provenance.
	Plain = workflow.Plain
	// Coarse records workflow-level provenance (Section 3.1).
	Coarse = workflow.Coarse
	// Fine records full database-style provenance (Section 3.2).
	Fine = workflow.Fine
)

// Workflow constructors.
var (
	// NewWorkflow returns an empty workflow DAG.
	NewWorkflow = workflow.New
	// NewUDFRegistry returns an empty UDF registry.
	NewUDFRegistry = pig.NewRegistry
	// WithEagerStateNodes makes invocations wrap every state tuple
	// eagerly (the letter of Section 3.2) instead of on first use.
	WithEagerStateNodes = workflow.WithEagerStateNodes
	// WithParallelism runs independent module invocations of each
	// execution on a bounded worker pool (n <= 0 selects GOMAXPROCS)
	// while keeping provenance capture deterministic.
	WithParallelism = workflow.WithParallelism
)

// The Lipstick system (Section 5.1).
type (
	// Tracker is the Provenance Tracker: executes workflows and persists
	// provenance-annotated outputs plus the provenance graph.
	Tracker = core.Tracker
	// QueryProcessor answers zoom, deletion, subgraph, and dependency
	// queries over a loaded provenance graph, selecting nodes through the
	// snapshot's postings index.
	QueryProcessor = core.QueryProcessor
	// NodeFilter selects graph nodes by structural properties.
	NodeFilter = core.NodeFilter
	// Lineage classifies everything a node's existence draws on.
	Lineage = core.Lineage
	// Snapshot is the tracker's persistent output.
	Snapshot = store.Snapshot
	// SnapshotManager is an LRU cache of loaded query processors keyed by
	// snapshot path, revalidated against file mtime+size.
	SnapshotManager = core.SnapshotManager
	// QueryService is the transport-agnostic query handler layer shared by
	// the lipstick CLI and `lipstick serve`; its Handler method exposes
	// every query over HTTP.
	QueryService = serve.Service
	// Registry names snapshots (explicit registration or directory scan)
	// over a SnapshotManager and manages copy-on-write mutation sessions;
	// `lipstick serve -dir` exposes it over HTTP.
	Registry = core.Registry
	// RegistryOption configures a Registry (session TTL, session cap).
	RegistryOption = core.RegistryOption
	// Session is a mutable what-if view over one snapshot: zoom and
	// deletion transformations are recorded as overlay deltas over the
	// shared base graph, so a session costs O(changes), not a deep copy.
	Session = core.Session
	// SnapshotInfo describes one registered snapshot (name + path).
	SnapshotInfo = core.SnapshotInfo
	// NotFoundError reports an unknown snapshot name or session id.
	NotFoundError = core.NotFoundError
	// GraphView is the read surface shared by a Graph and a session's
	// copy-on-write overlay.
	GraphView = provgraph.GraphView
	// Overlay is a copy-on-write view over an immutable base Graph.
	Overlay = provgraph.Overlay

	// Event is one captured provenance-graph mutation (the unit of
	// streaming capture and ingestion).
	Event = provgraph.Event
	// EventKind tags an Event's mutation type.
	EventKind = provgraph.EventKind
	// EventLog is a concurrency-safe capture buffer usable as an event
	// sink; senders drain batches from it.
	EventLog = provgraph.EventLog
	// LiveGraph is a provenance graph under streaming construction:
	// single-writer event application, concurrent indexed reads, and
	// optional WAL-backed durability with checkpoint compaction.
	LiveGraph = core.LiveGraph
	// LiveInfo summarizes a live graph (event count, nodes, durability).
	LiveInfo = core.LiveInfo
	// LiveOption configures a durable live graph (checkpoint cadence,
	// WAL tuning).
	LiveOption = core.LiveOption
	// IngestStatus reports one applied event batch.
	IngestStatus = core.IngestStatus
	// PendingAppend is a staged ingest batch whose durability wait
	// happens in Wait — the pipelined half of LiveGraph.AppendAsync.
	PendingAppend = core.PendingAppend
	// PipelineStats are a live graph's ingest-pipeline counters (group
	// commits, batches per commit, admission queue high-water).
	PipelineStats = core.PipelineStats
	// SeqGapError reports an ingest batch that skips ahead of a live
	// graph's event sequence.
	SeqGapError = core.SeqGapError
	// OverloadedError reports an ingest batch shed by admission control
	// (the HTTP layer's 429).
	OverloadedError = core.OverloadedError
	// IngestClient streams captured events to a lipstick server's
	// /v1/ingest/{name} endpoint as they are recorded, retrying overload
	// rejections with jittered backoff.
	IngestClient = serve.IngestClient
)

// System constructors.
var (
	// NewTracker validates a workflow and prepares provenance tracking.
	NewTracker = core.NewTracker
	// Load reads a tracker snapshot from disk into a query processor
	// (a private instance; see Open for the cached one).
	Load = core.Load
	// Open returns the process-wide cached query processor for a snapshot
	// path, loading it at most once per file version. The instance is
	// shared — callers must stick to read-only queries and use Load when
	// they need to transform the graph.
	Open = core.Open
	// NewSnapshotManager builds a private snapshot cache (capacity <= 0
	// selects the default).
	NewSnapshotManager = core.NewSnapshotManager
	// NewQueryService builds the shared query handler layer over a
	// snapshot cache (nil selects a private default cache).
	NewQueryService = serve.NewService
	// NewRegistryService builds the query handler layer over an existing
	// snapshot/session registry.
	NewRegistryService = serve.NewRegistryService
	// NewRegistry builds a snapshot/session registry over a snapshot
	// cache (nil selects a private default cache).
	NewRegistry = core.NewRegistry
	// WithSessionTTL sets the idle lifetime of registry sessions.
	WithSessionTTL = core.WithSessionTTL
	// WithSessionLimit caps concurrently live sessions per registry.
	WithSessionLimit = core.WithSessionLimit
	// NewOverlay opens a copy-on-write view over an immutable base graph
	// (sessions do this internally; exposed for library use).
	NewOverlay = provgraph.NewOverlay
	// Read builds a query processor from a snapshot stream.
	Read = core.Read
	// FromTracker builds a query processor over a live tracker.
	FromTracker = core.FromTracker
	// NewQueryProcessor wraps an already-loaded snapshot.
	NewQueryProcessor = core.NewQueryProcessor

	// WithEventSink streams a run's provenance capture: every graph
	// mutation is reported as a typed Event in deterministic order.
	WithEventSink = workflow.WithEventSink
	// NewEventLog returns an empty concurrency-safe event buffer.
	NewEventLog = provgraph.NewEventLog
	// Replay reconstructs a graph from a captured event stream,
	// event-for-event identical to the source build.
	Replay = provgraph.Replay
	// ApplyEvent applies one captured event to a graph, validating ids
	// and sequencing.
	ApplyEvent = provgraph.Apply
	// NewLiveGraph returns an empty in-memory live graph.
	NewLiveGraph = core.NewLiveGraph
	// OpenLiveGraph opens a durable live graph over a write-ahead-log
	// directory, recovering checkpoint + tail state.
	OpenLiveGraph = core.OpenLiveGraph
	// WithCheckpointEvery sets a durable live graph's automatic
	// checkpoint interval in events.
	WithCheckpointEvery = core.WithCheckpointEvery
	// WithIngestQueueDepth bounds a live graph's in-flight ingest
	// batches; past the bound, appends are shed with *OverloadedError.
	WithIngestQueueDepth = core.WithIngestQueueDepth
	// WithLogOptions forwards WAL options (fsync policy, segment size,
	// group commit) to a durable live graph.
	WithLogOptions = core.WithLogOptions
	// WithGroupCommit switches a WAL to group-commit mode: concurrent
	// appends coalesce into one write + fsync.
	WithGroupCommit = store.WithGroupCommit
	// WithFsync controls whether WAL commits fsync (default true).
	WithFsync = store.WithFsync
	// WithLiveDir makes a Registry's live graphs durable under a
	// directory (one WAL per stream).
	WithLiveDir = core.WithLiveDir
	// NewIngestClient returns a streaming client for one named stream on
	// one lipstick server.
	NewIngestClient = serve.NewIngestClient
	// Ingest posts one event batch to a lipstick server.
	Ingest = serve.Ingest
	// EncodeEventBatch frames events in the binary ingest wire format.
	EncodeEventBatch = store.EncodeEventBatch
	// DecodeEventBatch reads one encoded event batch.
	DecodeEventBatch = store.DecodeEventBatch
)

// Provenance graph model (Section 3).
type (
	// Graph is the provenance graph.
	Graph = provgraph.Graph
	// Node is one provenance-graph node.
	Node = provgraph.Node
	// NodeID identifies a node within a graph.
	NodeID = provgraph.NodeID
	// DeletionResult reports what a deletion propagation removed.
	DeletionResult = provgraph.DeletionResult
	// SubgraphResult is the output of a subgraph query.
	SubgraphResult = provgraph.SubgraphResult
	// ZoomRecord lets ZoomIn undo a ZoomOut exactly.
	ZoomRecord = provgraph.ZoomRecord
)

// Node classification re-exports.
const (
	// ClassP marks provenance nodes; ClassV marks value nodes.
	ClassP = provgraph.ClassP
	ClassV = provgraph.ClassV

	// Node types of Section 3.
	TypeWorkflowInput = provgraph.TypeWorkflowInput
	TypeInvocation    = provgraph.TypeInvocation
	TypeModuleInput   = provgraph.TypeModuleInput
	TypeModuleOutput  = provgraph.TypeModuleOutput
	TypeState         = provgraph.TypeState
	TypeBaseTuple     = provgraph.TypeBaseTuple
	TypeOp            = provgraph.TypeOp
	TypeValue         = provgraph.TypeValue
	TypeZoom          = provgraph.TypeZoom

	// Operation labels.
	OpPlus   = provgraph.OpPlus
	OpTimes  = provgraph.OpTimes
	OpDelta  = provgraph.OpDelta
	OpTensor = provgraph.OpTensor
	OpAgg    = provgraph.OpAgg
	OpBB     = provgraph.OpBB
)

// InvalidNode is returned by lookups that find nothing.
const InvalidNode = provgraph.InvalidNode
